"""Tests for the statistical analyses (Welch t-test, ranks, p-value matrix)."""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.evaluation import average_ranks, pairwise_pvalue_matrix, rank_scores, welch_ttest
from repro.evaluation.stats import mean_pairwise_pvalues


class TestWelch:
    def test_matches_scipy(self, rng):
        a = rng.normal(0.0, 1.0, size=10)
        b = rng.normal(0.5, 2.0, size=14)
        t_ours, p_ours = welch_ttest(a, b)
        result = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert t_ours == pytest.approx(result.statistic)
        assert p_ours == pytest.approx(result.pvalue)

    def test_identical_samples_p_near_one(self, rng):
        a = rng.normal(size=30)
        _, p = welch_ttest(a, a + rng.normal(0, 1e-9, size=30))
        assert p > 0.9

    def test_separated_samples_p_near_zero(self, rng):
        _, p = welch_ttest(rng.normal(0, 0.1, 20), rng.normal(10, 0.1, 20))
        assert p < 1e-6

    def test_constant_equal_samples(self):
        t, p = welch_ttest(np.ones(3), np.ones(3))
        assert (t, p) == (0.0, 1.0)

    def test_constant_different_samples(self):
        _, p = welch_ttest(np.ones(3), np.zeros(3))
        assert p == 0.0

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            welch_ttest(np.array([1.0]), np.array([1.0, 2.0]))

    def test_symmetric_in_arguments(self, rng):
        a, b = rng.normal(size=8), rng.normal(1, 1, size=8)
        _, p_ab = welch_ttest(a, b)
        _, p_ba = welch_ttest(b, a)
        assert p_ab == pytest.approx(p_ba)


class TestWelchEdgeCases:
    """Degenerate inputs: zero variance, tiny samples, identical means.

    Every case runs with warnings escalated to errors — the t-test
    must handle degenerate variances explicitly, not by emitting
    divide-by-zero RuntimeWarnings and hoping.
    """

    def test_one_constant_group_finite(self, rng):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            t_stat, p_value = welch_ttest(np.full(5, 0.7), rng.normal(size=5))
        assert math.isfinite(t_stat)
        assert math.isfinite(p_value) and 0.0 <= p_value <= 1.0

    def test_both_constant_same_mean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            t_stat, p_value = welch_ttest(np.full(4, 0.9), np.full(6, 0.9))
        assert (t_stat, p_value) == (0.0, 1.0)

    def test_both_constant_different_means(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            t_stat, p_value = welch_ttest(np.full(4, 0.9), np.full(4, 0.1))
        assert math.isinf(t_stat)
        assert p_value == 0.0

    def test_n1_sample_raises_cleanly(self):
        """A single observation has no variance estimate: a clear
        ValueError, never a numerics warning or a NaN p-value."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ValueError, match="at least 2"):
                welch_ttest(np.array([0.5]), np.array([0.4, 0.6, 0.5]))

    def test_identical_means_different_variance(self, rng):
        noise = rng.normal(size=10)
        a = 0.5 + 0.01 * (noise - noise.mean())
        b = np.full(10, 0.5) + 2.0 * (rng.normal(size=10) - 0.0)
        b = b - b.mean() + a.mean()  # force exactly equal means
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            t_stat, p_value = welch_ttest(a, b)
        assert t_stat == pytest.approx(0.0)
        assert p_value == pytest.approx(1.0)

    def test_mean_pairwise_skips_undersized_groups(self):
        """Figure-5 aggregation silently skips n<2 groups (TO/COM runs)
        instead of propagating the welch ValueError."""
        per_dataset = [
            {"pca": np.array([0.8, 0.82, 0.81]), "svd": np.array([0.79])},
            {"pca": np.array([0.7, 0.72, 0.71]), "svd": np.array([0.69, 0.7, 0.71])},
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            matrix = mean_pairwise_pvalues(per_dataset, ["pca", "svd"])
        assert matrix.shape == (2, 2)
        assert math.isfinite(matrix[0, 1]) and 0.0 <= matrix[0, 1] <= 1.0


class TestPairwiseMatrix:
    def test_shape_diagonal_symmetry(self, rng):
        samples = {name: rng.normal(size=6) for name in "abcd"}
        names, matrix = pairwise_pvalue_matrix(samples)
        assert names == list("abcd")
        assert matrix.shape == (4, 4)
        np.testing.assert_array_equal(np.diag(matrix), np.ones(4))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_values_in_unit_interval(self, rng):
        samples = {name: rng.normal(size=6) for name in "abc"}
        _, matrix = pairwise_pvalue_matrix(samples)
        assert ((matrix >= 0) & (matrix <= 1)).all()

    def test_needs_two_methods(self, rng):
        with pytest.raises(ValueError):
            pairwise_pvalue_matrix({"only": rng.normal(size=5)})

    def test_paper_scenario_no_significant_difference(self, rng):
        """Methods drawing from the same distribution: min p stays large,
        mirroring the paper's Figure-5 conclusion."""
        base = rng.normal(0.7, 0.05, size=(5, 36))
        samples = {f"m{i}": base[i] + rng.normal(0, 0.01, 36) for i in range(5)}
        _, matrix = pairwise_pvalue_matrix(samples)
        off_diag = matrix[~np.eye(5, dtype=bool)]
        assert off_diag.min() > 0.01


class TestRanks:
    def test_rank_scores_descending(self):
        np.testing.assert_array_equal(rank_scores(np.array([0.9, 0.5, 0.7])), [1, 3, 2])

    def test_ties_averaged(self):
        np.testing.assert_array_equal(rank_scores(np.array([0.5, 0.5, 0.1])), [1.5, 1.5, 3])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rank_scores(np.zeros((2, 2)))

    def test_average_ranks(self):
        table = np.array([[0.9, 0.5, 0.7], [0.8, 0.6, 0.4]])
        ranks = average_ranks(table, ["a", "b", "c"])
        assert ranks["a"] == 1.0
        assert ranks["b"] == pytest.approx(2.5)
        assert ranks["c"] == pytest.approx(2.5)

    def test_nan_ranks_last(self):
        table = np.array([[0.9, np.nan, 0.7]])
        ranks = average_ranks(table, ["a", "b", "c"])
        assert ranks["b"] == 3.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            average_ranks(np.zeros((2, 3)), ["a", "b"])

    def test_best_method_has_lowest_rank(self, rng):
        """Figure-4 semantics: consistently best -> rank 1."""
        scores = rng.uniform(0.3, 0.6, size=(10, 4))
        scores[:, 2] = 0.95  # method c always wins
        ranks = average_ranks(scores, list("abcd"))
        assert ranks["c"] == 1.0
        assert all(ranks["c"] < ranks[m] for m in "abd")
