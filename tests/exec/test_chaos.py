"""Chaos scenarios: kill anywhere, resume, converge to the same grid.

The subprocess tests drive ``python -m repro.exec.chaos`` — a scripted
grid against a real grid directory — and inject faults through the
``REPRO_CHAOS`` environment variable, which is the only way to test a
genuine SIGKILL (no atexit, no finally, no flushing).  Every scenario
is seeded and deterministic: a failing kill point replays exactly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.exec import (
    ChaosError,
    ChaosInjector,
    ChaosPlan,
    GridJournal,
    ProgressTracker,
    ScriptedRunner,
    plans_to_env,
    run_jobs,
    scripted_grid,
)
from repro.exec.chaos import install, uninstall

JOBS = 12
SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    uninstall()


def drive(grid_dir, cache_dir, exec_log, *extra, plans=(), expect_kill=False):
    """Run the chaos driver subprocess; returns its parsed JSON summary."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if plans:
        env["REPRO_CHAOS"] = plans_to_env(plans)
    else:
        env.pop("REPRO_CHAOS", None)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.exec.chaos",
            "--grid-dir", str(grid_dir), "--cache-dir", str(cache_dir),
            "--exec-log", str(exec_log), "--jobs", str(JOBS),
            "--stale-after", "2.0", *extra,
        ],
        env=env, capture_output=True, text=True, timeout=120,
    )
    if expect_kill:
        assert proc.returncode == -9, f"expected SIGKILL, got {proc.returncode}: {proc.stderr}"
        return None
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def executed_labels(exec_log) -> list[str]:
    path = Path(exec_log)
    return path.read_text().splitlines() if path.exists() else []


@pytest.fixture
def dirs(tmp_path):
    return {
        "grid": tmp_path / "grid",
        "cache": tmp_path / "cache",
        "log": tmp_path / "exec.log",
    }


@pytest.fixture(scope="module")
def reference_cells(tmp_path_factory):
    """The grid's ground-truth results, from one uninterrupted run."""
    base = tmp_path_factory.mktemp("reference")
    summary = drive(base / "grid", base / "cache", base / "log")
    assert summary["completed"] == JOBS
    return summary["cells"]


class TestInjector:
    def test_fires_at_exact_visit_count(self):
        injector = install(ChaosInjector([ChaosPlan("exception", "site.x", after=3)]))
        from repro.exec import chaos_point

        chaos_point("site.x")
        chaos_point("site.x")
        with pytest.raises(ChaosError):
            chaos_point("site.x")
        assert injector.visits["site.x"] == 3
        assert injector.fired == [ChaosPlan("exception", "site.x", after=3)]

    def test_sites_are_counted_independently(self):
        install(ChaosInjector([ChaosPlan("exception", "site.b", after=1)]))
        from repro.exec import chaos_point

        chaos_point("site.a")  # must not trip site.b's plan
        with pytest.raises(ChaosError):
            chaos_point("site.b")

    def test_env_round_trip(self):
        plans = [ChaosPlan("kill", "journal.committed", after=7)]
        decoded = [ChaosPlan.from_dict(d) for d in json.loads(plans_to_env(plans))]
        assert decoded == plans

    def test_no_injector_is_a_noop(self):
        uninstall()
        from repro.exec import chaos_point

        os.environ.pop("REPRO_CHAOS", None)
        chaos_point("anything")  # must not raise

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ChaosPlan("meteor", "site.x")


@pytest.mark.parametrize(
    "site,after",
    [
        ("journal.committed", 5),   # during the claim phase
        ("journal.committed", 15),  # between a store write and later appends
        ("exec.job", 4),            # just before the 4th inline execution
        ("journal.record", 20),     # before an append is persisted
    ],
)
class TestKillResumeConvergence:
    def test_kill_anywhere_resume_converges(self, dirs, reference_cells, site, after):
        drive(
            dirs["grid"], dirs["cache"], dirs["log"],
            plans=[ChaosPlan("kill", site, after=after)], expect_kill=True,
        )
        labels_after_kill = executed_labels(dirs["log"])

        summary = drive(dirs["grid"], dirs["cache"], dirs["log"])
        assert summary["completed"] == JOBS
        # Bit-identical results table vs the uninterrupted reference.
        assert summary["cells"] == reference_cells
        # Zero re-executed done jobs: only jobs the kill genuinely
        # interrupted may appear again, and no label more than twice.
        labels = executed_labels(dirs["log"])
        done_before = {
            label for label in labels_after_kill if labels.count(label) == 1
        }
        assert len(set(labels)) == JOBS
        assert all(labels.count(label) <= 2 for label in set(labels))
        assert done_before.issubset(set(labels))

        # A second resume re-executes nothing at all.
        again = drive(dirs["grid"], dirs["cache"], dirs["log"])
        assert again["cells"] == reference_cells
        assert again["progress"]["resumed"] == JOBS
        assert executed_labels(dirs["log"]) == labels


class TestKillInvariants:
    def test_journal_counts_no_duplicate_done_executions(self, dirs):
        drive(
            dirs["grid"], dirs["cache"], dirs["log"],
            plans=[ChaosPlan("kill", "journal.committed", after=10)], expect_kill=True,
        )
        drive(dirs["grid"], dirs["cache"], dirs["log"])
        journal = GridJournal.open(dirs["grid"])
        for entry in journal.entries():
            assert entry.state == "done"
            assert entry.executions() <= 1  # journaled runs, cache repairs excluded
        assert journal.progress()["re_executed"] == 0

    def test_resume_leaves_no_held_leases(self, dirs):
        drive(
            dirs["grid"], dirs["cache"], dirs["log"],
            plans=[ChaosPlan("kill", "journal.committed", after=8)], expect_kill=True,
        )
        drive(dirs["grid"], dirs["cache"], dirs["log"])
        assert list((dirs["grid"] / "leases").glob("*.lock")) == []


class TestConcurrentShards:
    def test_two_shards_share_a_grid_without_duplicate_execution(self, dirs):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_CHAOS", None)
        argv = [
            sys.executable, "-m", "repro.exec.chaos",
            "--grid-dir", str(dirs["grid"]), "--cache-dir", str(dirs["cache"]),
            "--exec-log", str(dirs["log"]), "--jobs", str(JOBS),
            "--seconds-per-job", "0.05", "--stale-after", "60",
        ]
        procs = [
            subprocess.Popen(
                argv + ["--owner", f"shard-{i}"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        summaries = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            summaries.append(json.loads(out))

        # Every shard converged on the full grid (wait_for_peers mode).
        for summary in summaries:
            assert summary["completed"] == JOBS
        assert summaries[0]["cells"] == summaries[1]["cells"]
        # The double-claim guarantee: each job executed exactly once
        # across both processes (the O_EXCL lockfile is the arbiter).
        labels = executed_labels(dirs["log"])
        assert sorted(labels) == sorted(set(labels))
        assert len(labels) == JOBS

    def test_shard_mode_returns_none_for_foreign_leases(self, tmp_path):
        # In-process version of the race: a peer holds a live lease, so
        # a --shard style run must leave that slot unfinished (None)
        # rather than wait or steal.
        from repro.exec import LeaseBoard

        specs = scripted_grid(4)
        cache = tmp_path / "cache"
        runner = ScriptedRunner(cache, exec_log=tmp_path / "log")
        grid_dir = tmp_path / "grid"
        journal = GridJournal(grid_dir, runner.config_fingerprint)
        journal.register(specs)
        peer = LeaseBoard(grid_dir, owner="peer", stale_after=60.0)
        assert peer.try_acquire(journal.digest_for(specs[0])) is not None

        tracker = ProgressTracker()
        results = run_jobs(
            ScriptedRunner(cache, exec_log=tmp_path / "log"), specs,
            grid_dir=grid_dir, wait_for_peers=False, stale_after=60.0,
            tracker=tracker,
        )
        assert results[0] is None
        assert all(r is not None for r in results[1:])
        assert tracker.stolen == 0  # a live heartbeat is never stolen
