"""Tests for the WorkerPool and the spec-level parallel executor.

Worker task functions live at module level so the spawn context can
re-import them in the child processes.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import (
    FaultPolicy,
    JobFailedError,
    JobSpec,
    TransientJobError,
    WorkerPool,
    grid,
    run_jobs,
)
from repro.exec import executor as executor_module
from repro.experiments import ExperimentRunner, get_preset
from repro.resources import RunStatus


# ----------------------------------------------------------------------
# Spawn-safe task functions
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _sleep_then_return(payload):
    duration, value = payload
    time.sleep(duration)
    return value


def _crash_first_time(marker_path):
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("crashed")
        os._exit(13)  # hard crash: no exception, no cleanup
    return "recovered"


def _always_value_error(_payload):
    raise ValueError("deterministic failure")


def _always_transient(_payload):
    raise TransientJobError("keeps flaking")


def _broken_initializer():
    raise RuntimeError("worker init is broken")


QUICK_POLICY = FaultPolicy(max_retries=2, backoff_s=0.05, backoff_factor=2.0)


# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_results_in_input_order(self):
        pool = WorkerPool(_square, workers=2, policy=QUICK_POLICY)
        outcomes = pool.map([3, 1, 4, 1, 5])
        assert [o.status for o in outcomes] == ["ok"] * 5
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]

    def test_order_preserved_when_durations_vary(self):
        pool = WorkerPool(_sleep_then_return, workers=2, policy=QUICK_POLICY)
        outcomes = pool.map([(0.4, "slow"), (0.0, "fast")])
        assert [o.value for o in outcomes] == ["slow", "fast"]

    def test_timeout_terminates_only_the_offender(self):
        pool = WorkerPool(
            _sleep_then_return, workers=2, policy=QUICK_POLICY, timeout=1.0
        )
        outcomes = pool.map([(30.0, "never"), (0.05, "quick")])
        assert outcomes[0].status == "timeout"
        assert outcomes[0].value is None
        assert outcomes[1].status == "ok"
        assert outcomes[1].value == "quick"

    def test_crashed_worker_respawns_and_job_retries(self, tmp_path):
        marker = str(tmp_path / "crash-marker")
        pool = WorkerPool(_crash_first_time, workers=1, policy=QUICK_POLICY)
        outcomes = pool.map([marker])
        assert outcomes[0].status == "ok"
        assert outcomes[0].value == "recovered"
        assert outcomes[0].attempts == 2

    def test_deterministic_errors_are_not_retried(self):
        pool = WorkerPool(_always_value_error, workers=1, policy=QUICK_POLICY)
        outcomes = pool.map(["x"])
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 1
        assert "ValueError" in outcomes[0].error

    def test_transient_errors_exhaust_retries(self):
        policy = FaultPolicy(max_retries=1, backoff_s=0.01)
        pool = WorkerPool(_always_transient, workers=1, policy=policy)
        outcomes = pool.map(["x"])
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 2  # initial try + one retry
        assert "TransientJobError" in outcomes[0].error

    def test_broken_initializer_breaks_pool_not_caller(self):
        pool = WorkerPool(
            _square, workers=2, initializer=_broken_initializer, policy=QUICK_POLICY
        )
        outcomes = pool.map([1, 2, 3])
        assert [o.status for o in outcomes] == ["broken"] * 3


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fast_config():
    return get_preset("fast")


class TestRunJobs:
    def test_parallel_matches_serial_on_cold_grids(self, fast_config, tmp_path):
        """Acceptance: workers=1 and workers=4 give identical results."""
        specs = grid(
            ["JapaneseVowels", "NATOPS"], ["MOMENT", "ViT"],
            adapters=["pca"], seeds=(0, 1),
        )
        assert len(specs) >= 8

        def values(results):
            return [
                (r.dataset, r.model, r.adapter, r.seed, r.status, r.accuracy)
                for r in results
            ]

        serial_runner = ExperimentRunner(fast_config, cache_dir=str(tmp_path / "serial"))
        serial = run_jobs(serial_runner, specs, workers=1)
        parallel_runner = ExperimentRunner(fast_config, cache_dir=str(tmp_path / "par"))
        parallel = run_jobs(parallel_runner, specs, workers=4)
        assert values(serial) == values(parallel)

    def test_pool_timeout_surfaces_as_to_without_killing_grid(
        self, fast_config, tmp_path
    ):
        """Acceptance: a job over --job-timeout becomes a TO cell; the
        rest of the grid still completes."""
        runner = ExperimentRunner(fast_config, cache_dir=str(tmp_path))
        quick = [
            JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca", seed=s)
            for s in (0, 1)
        ]
        slow = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="lcomb")
        # Warm the quick jobs so only the slow one reaches the pool —
        # this keeps the timing assertion deterministic on 1 CPU.
        run_jobs(runner, quick, workers=1)
        # The budget must sit below the slow job's wall time; the
        # float32 fast-numerics core runs it in well under a second,
        # so use a budget only cache hits can beat.
        results = run_jobs(runner, quick + [slow], workers=2, job_timeout=0.1)
        assert [r.status for r in results[:2]] == [RunStatus.OK, RunStatus.OK]
        assert results[2].status is RunStatus.TIMEOUT
        assert results[2].cell == "TO"
        # An executor timeout is not content-addressed state: the job
        # must rerun (and can succeed) without the budget.
        assert runner.cached_result(slow) is None

    def test_serial_timeout_classifies_post_hoc(self, fast_config, tmp_path):
        runner = ExperimentRunner(fast_config, cache_dir=str(tmp_path))
        specs = [
            JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca", seed=s)
            for s in (0, 1)
        ]
        results = run_jobs(runner, specs, workers=1, job_timeout=1e-4)
        # Both jobs ran to completion (serial cannot pre-empt) and both
        # were classified TO after the fact; neither killed the other.
        assert [r.status for r in results] == [RunStatus.TIMEOUT, RunStatus.TIMEOUT]

    def test_memory_budget_maps_to_com_and_is_not_cached(self, fast_config):
        runner = ExperimentRunner(fast_config)
        spec = JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca")
        budgeted = run_jobs(
            runner, [spec], workers=1, policy=FaultPolicy(memory_budget_bytes=1.0)
        )
        assert budgeted[0].status is RunStatus.OUT_OF_MEMORY
        assert budgeted[0].cell == "COM"
        # The budget belongs to the executor invocation, not the job:
        # without it the same spec runs OK.
        clean = run_jobs(runner, [spec], workers=1)
        assert clean[0].status is RunStatus.OK

    def test_duplicates_deduplicated_but_returned_in_order(self, fast_config):
        runner = ExperimentRunner(fast_config)
        spec = JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca")
        results = run_jobs(runner, [spec, spec, spec], workers=1)
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert runner.instrumentation.summary().counters.get("fit_runs") == 1

    def test_permanent_failure_raised_after_grid_completes(self, fast_config, tmp_path):
        runner = ExperimentRunner(fast_config, cache_dir=str(tmp_path))
        good = JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca")
        bad = JobSpec(
            dataset="JapaneseVowels", model="MOMENT", adapter="pca",
            adapter_kwargs={"bogus_option": 1},
        )
        with pytest.raises(JobFailedError) as excinfo:
            run_jobs(runner, [bad, good], workers=2, policy=QUICK_POLICY)
        assert len(excinfo.value.failures) == 1
        # The good job finished (and was cached) despite the failure.
        assert runner.cached_result(good) is not None

    def test_degrades_inline_when_pool_is_broken(self, fast_config, monkeypatch):
        from repro.exec.executor import JobOutcome

        def broken_map(self, payloads, labels=None, *, on_outcome=None, on_tick=None):
            return [
                JobOutcome(index=i, status="broken", error="pool died")
                for i in range(len(payloads))
            ]

        monkeypatch.setattr(executor_module.WorkerPool, "map", broken_map)
        runner = ExperimentRunner(fast_config)
        spec = JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca")
        results = run_jobs(runner, [spec], workers=2)
        assert results[0].status is RunStatus.OK
        assert results[0].accuracy is not None

    def test_workers_share_disk_store_across_processes(self, fast_config, tmp_path):
        spec = JobSpec(dataset="JapaneseVowels", model="ViT", adapter="var")
        first = ExperimentRunner(fast_config, cache_dir=str(tmp_path))
        run_jobs(first, [spec], workers=2)
        # A fresh runner on the same cache dir sees the worker's result.
        second = ExperimentRunner(fast_config, cache_dir=str(tmp_path))
        assert second.cached_result(spec) is not None
        assert second.instrumentation.summary().counters.get("fit_runs") is None

    def test_simulation_gated_jobs_never_reach_workers(self, fast_config):
        runner = ExperimentRunner(fast_config)
        # Full fine-tuning of MOMENT on Heartbeat blows the V100 budget
        # in the cost model, so the executor resolves it in-parent.
        spec = JobSpec(
            dataset="Heartbeat", model="MOMENT", adapter="none", strategy="full"
        )
        results = run_jobs(runner, [spec], workers=2)
        assert results[0].status is not RunStatus.OK
        assert results[0].accuracy is None
