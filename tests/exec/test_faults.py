"""Tests for the fault taxonomy and policy."""

from __future__ import annotations

import pytest

from repro.exec import (
    FaultPolicy,
    JobFailedError,
    JobSpec,
    TransientJobError,
    is_transient,
    memory_result,
    timeout_result,
)
from repro.resources import RunStatus, simulate_finetuning
from repro.data.metadata import dataset_info


@pytest.fixture()
def spec():
    return JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca", seed=1)


@pytest.fixture()
def simulated():
    return simulate_finetuning("moment-large", dataset_info("Heartbeat"), adapter="pca")


class TestTransience:
    def test_marker_and_os_errors_are_transient(self):
        assert is_transient(TransientJobError("flaky"))
        assert is_transient(OSError("pipe"))
        assert is_transient(EOFError())

    def test_value_errors_are_permanent(self):
        assert not is_transient(ValueError("bad input"))
        assert not is_transient(KeyError("missing"))


class TestFaultPolicy:
    def test_backoff_is_exponential(self):
        policy = FaultPolicy(max_retries=3, backoff_s=0.5, backoff_factor=2.0)
        assert policy.delays() == (0.5, 1.0, 2.0)

    def test_zero_failures_means_no_delay(self):
        assert FaultPolicy().backoff_delay(0) == 0.0


class TestJobFailedError:
    def test_message_lists_every_failure(self):
        from repro.exec import JobFailure

        error = JobFailedError([
            JobFailure("a/MOMENT", "ValueError: x", 1),
            JobFailure("b/ViT", "died", 3),
        ])
        text = str(error)
        assert "2 job(s) failed" in text
        assert "a/MOMENT" in text and "after 3 attempts" in text


class TestCellMapping:
    def test_timeout_result_is_a_to_cell(self, spec, simulated):
        result = timeout_result(spec, simulated, 12.5)
        assert result.status is RunStatus.TIMEOUT
        assert result.accuracy is None
        assert result.cell == "TO"
        assert result.measured_seconds == 12.5
        assert (result.dataset, result.model, result.seed) == ("Heartbeat", "MOMENT", 1)

    def test_memory_result_is_a_com_cell(self, spec, simulated):
        result = memory_result(spec, simulated)
        assert result.status is RunStatus.OUT_OF_MEMORY
        assert result.cell == "COM"
        assert result.accuracy is None

    def test_results_round_trip_to_meta(self, spec, simulated):
        from repro.experiments import ExperimentResult

        result = timeout_result(spec, simulated, 3.0)
        assert ExperimentResult.from_meta(result.to_meta()) == result
