"""Tests for the persistent grid journal (repro.exec.journal)."""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    GridJournal,
    ProgressTracker,
    ScriptedRunner,
    corrupt_store_entry,
    run_jobs,
    scripted_grid,
    timeout_result,
)
from repro.exec.journal import TERMINAL_STATES


@pytest.fixture
def grid_env(tmp_path):
    """A grid directory + scripted runner factory sharing one store dir."""
    cache_dir = tmp_path / "cache"
    exec_log = tmp_path / "exec.log"

    def make_runner():
        return ScriptedRunner(cache_dir, exec_log=exec_log)

    return {
        "grid_dir": str(tmp_path / "grid"),
        "cache_dir": cache_dir,
        "make_runner": make_runner,
    }


class TestJournalLifecycle:
    def test_fresh_grid_lands_every_spec_as_done(self, grid_env):
        specs = scripted_grid(6)
        runner = grid_env["make_runner"]()
        results = run_jobs(runner, specs, grid_dir=grid_env["grid_dir"])
        assert all(r is not None for r in results)
        journal = GridJournal.open(grid_env["grid_dir"])
        assert journal.counts()["done"] == 6
        assert set(journal.specs()) == set(specs)
        for entry in journal.entries():
            assert entry.terminal
            assert entry.state in TERMINAL_STATES

    def test_resume_re_executes_nothing(self, grid_env):
        specs = scripted_grid(6)
        run_jobs(grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"])
        executed_once = grid_env["make_runner"]().executions()
        assert len(executed_once) == 6

        tracker = ProgressTracker()
        resumed = run_jobs(
            grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"],
            tracker=tracker,
        )
        assert len(grid_env["make_runner"]().executions()) == 6  # unchanged
        assert tracker.resumed == 6
        # Bit-identical verdicts across the resume.
        first = run_jobs(grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"])
        assert [r.cell for r in resumed] == [r.cell for r in first]

    def test_journal_survives_no_resume_flag(self, grid_env):
        specs = scripted_grid(4)
        run_jobs(grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"])
        # resume=False ignores journaled verdicts but the store still
        # answers, so nothing re-executes; fresh records are appended.
        run_jobs(
            grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"],
            resume=False,
        )
        assert len(grid_env["make_runner"]().executions()) == 4
        journal = GridJournal.open(grid_env["grid_dir"])
        assert journal.counts()["done"] == 4

    def test_corrupt_store_entry_re_executes_exactly_that_job(self, grid_env):
        specs = scripted_grid(5)
        runner = grid_env["make_runner"]()
        run_jobs(runner, specs, grid_dir=grid_env["grid_dir"])
        victim = specs[2]
        corrupt_store_entry(grid_env["cache_dir"], victim.result_key("scripted"))

        fresh = grid_env["make_runner"]()
        results = run_jobs(fresh, specs, grid_dir=grid_env["grid_dir"])
        assert all(r is not None for r in results)
        assert fresh.store.stats.corrupt >= 1
        executions = grid_env["make_runner"]().executions()
        assert len(executions) == 6  # 5 original + 1 re-run
        assert executions.count(victim.label) == 2

    def test_crash_between_store_write_and_journal_append_repairs(self, grid_env):
        specs = scripted_grid(3)
        runner = grid_env["make_runner"]()
        # Simulate the crash window: the result reached the store but
        # the journal never saw a terminal record.
        for spec in specs:
            runner.run_spec(spec)
        tracker = ProgressTracker()
        run_jobs(
            grid_env["make_runner"](), specs, grid_dir=grid_env["grid_dir"],
            tracker=tracker,
        )
        assert len(grid_env["make_runner"]().executions()) == 3  # zero re-runs
        assert tracker.cached == 3
        journal = GridJournal.open(grid_env["grid_dir"])
        for entry in journal.entries():
            assert entry.state == "done"
            assert entry.last.cached  # repaired from the store, not re-run
            assert entry.executions() == 0


class TestRetryBudget:
    def _journal_with_timeout(self, grid_env, spec, attempts):
        runner = grid_env["make_runner"]()
        journal = GridJournal(grid_env["grid_dir"], runner.config_fingerprint)
        journal.register([spec])
        verdict = timeout_result(spec, runner.simulate_spec(spec), 99.0)
        journal.record_result(spec, verdict, attempts=attempts)
        return runner, journal

    def test_timeout_within_budget_is_retried(self, grid_env):
        spec = scripted_grid(1)[0]
        runner, journal = self._journal_with_timeout(grid_env, spec, attempts=1)
        assert journal.resolve(spec, runner) is None  # 1 attempt <= budget 1

    def test_timeout_over_budget_reuses_the_verdict(self, grid_env):
        spec = scripted_grid(1)[0]
        runner, journal = self._journal_with_timeout(grid_env, spec, attempts=2)
        reused = journal.resolve(spec, runner)
        assert reused is not None
        assert reused.status.name == "TIMEOUT"
        assert reused.cell == "TO"

    def test_executor_retries_timeout_then_journals_attempts(self, grid_env):
        spec = scripted_grid(1)[0]
        self._journal_with_timeout(grid_env, spec, attempts=1)
        # The retry succeeds (ScriptedRunner jobs always pass).
        tracker = ProgressTracker()
        results = run_jobs(
            grid_env["make_runner"](), [spec], grid_dir=grid_env["grid_dir"],
            tracker=tracker,
        )
        assert results[0].status.name == "OK"
        entry = GridJournal.open(grid_env["grid_dir"]).entries()[0]
        assert entry.state == "done"
        assert entry.attempts == 2

    def test_failed_state_is_always_re_eligible(self, grid_env):
        spec = scripted_grid(1)[0]
        runner = grid_env["make_runner"]()
        journal = GridJournal(grid_env["grid_dir"], runner.config_fingerprint)
        journal.register([spec])
        journal.mark_failed(spec, "boom", attempts=7)
        assert journal.resolve(spec, runner) is None


class TestDurability:
    def test_record_files_are_valid_json_after_every_append(self, grid_env):
        spec = scripted_grid(1)[0]
        runner = grid_env["make_runner"]()
        journal = GridJournal(grid_env["grid_dir"], runner.config_fingerprint)
        journal.register([spec])
        journal.mark_leased(spec, "owner-a")
        journal.record_result(spec, runner.run_spec(spec), attempts=1)
        path = journal._entry_path(journal.digest_for(spec))
        data = json.loads(path.read_text())
        assert [r["state"] for r in data["records"]] == ["leased", "done"]

    def test_register_is_idempotent_and_merges(self, grid_env):
        specs = scripted_grid(4)
        runner = grid_env["make_runner"]()
        journal = GridJournal(grid_env["grid_dir"], runner.config_fingerprint)
        journal.register(specs[:2])
        journal.register(specs)  # superset: merge, no duplicates
        journal.register(specs[1:3])  # subset: no-op
        assert len(journal.specs()) == 4

    def test_open_reads_fingerprint_from_manifest(self, grid_env):
        specs = scripted_grid(2)
        runner = grid_env["make_runner"]()
        GridJournal(grid_env["grid_dir"], runner.config_fingerprint).register(specs)
        reopened = GridJournal.open(grid_env["grid_dir"])
        assert reopened.fingerprint == "scripted"
        assert set(reopened.specs()) == set(specs)

    def test_progress_reports_counts_and_eta(self, grid_env):
        specs = scripted_grid(4)
        runner = grid_env["make_runner"]()
        journal = GridJournal(grid_env["grid_dir"], runner.config_fingerprint)
        journal.register(specs)
        for spec in specs[:2]:
            result = runner.run_spec(spec)
            result = result.__class__.from_meta(
                {**result.to_meta(), "measured_seconds": 2.0}
            )
            journal.record_result(spec, result, attempts=1)
        progress = journal.progress()
        assert progress["total"] == 4
        assert progress["counts"]["done"] == 2
        assert progress["remaining"] == 2
        assert progress["mean_job_seconds"] == pytest.approx(2.0)
        assert progress["eta_seconds"] == pytest.approx(4.0)
        assert progress["re_executed"] == 0
