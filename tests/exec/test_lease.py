"""Tests for file-lock shard leases (repro.exec.lease)."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exec import DEFAULT_STALE_AFTER, LeaseBoard
from repro.exec.chaos import ChaosInjector, ChaosPlan, install, uninstall


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    uninstall()


def backdate(path, seconds: float) -> None:
    """Age a lockfile's heartbeat by ``seconds``."""
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestAcquisition:
    def test_exclusive_between_boards(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.try_acquire("d1")
        assert lease is not None and lease.owner == "a" and not lease.stolen
        assert b.try_acquire("d1") is None
        assert b.stats()["contested"] == 1

    def test_release_reopens_the_slot(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        lease = a.try_acquire("d1")
        a.release(lease)
        assert b.try_acquire("d1") is not None

    def test_lockfile_payload_names_the_owner(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="host:1:aa")
        lease = a.try_acquire("d1")
        data = json.loads(lease.path.read_text())
        assert data["owner"] == "host:1:aa"
        assert data["digest"] == "d1"

    def test_default_stale_after_matches_module_constant(self, tmp_path):
        assert LeaseBoard(tmp_path).stale_after == DEFAULT_STALE_AFTER


class TestStaleReclamation:
    def test_stale_lease_is_stolen(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        dead = a.try_acquire("d1")
        backdate(dead.path, 60.0)
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        stolen = b.try_acquire("d1")
        assert stolen is not None and stolen.stolen
        assert b.stats()["stolen"] == 1

    def test_live_heartbeat_is_never_stolen(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        lease = a.try_acquire("d1")
        backdate(lease.path, 60.0)
        assert lease.heartbeat()  # refreshes mtime: the owner is alive
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        assert b.try_acquire("d1") is None

    def test_previous_owner_detects_the_theft(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        lease = a.try_acquire("d1")
        backdate(lease.path, 60.0)
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        assert b.try_acquire("d1") is not None
        # The zombie's heartbeat must not refresh the thief's lockfile.
        assert lease.heartbeat() is False
        assert a.heartbeat_held(min_interval=0.0) == 0

    def test_release_after_theft_keeps_the_thiefs_lock(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        lease = a.try_acquire("d1")
        backdate(lease.path, 60.0)
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        stolen = b.try_acquire("d1")
        a.release(lease)  # must not unlink b's lockfile
        assert json.loads(stolen.path.read_text())["owner"] == "b"

    def test_exactly_one_of_two_racers_steals(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        dead = a.try_acquire("d1")
        backdate(dead.path, 60.0)
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        c = LeaseBoard(tmp_path, owner="c", stale_after=5.0)
        # Force the race: both see the same stale file; only the board
        # whose rename wins may recreate the lock.
        winners = [board.try_acquire("d1") for board in (b, c)]
        assert sum(lease is not None for lease in winners) == 1

    def test_frozen_heartbeat_reports_ok_but_goes_stale(self, tmp_path):
        install(ChaosInjector([ChaosPlan("freeze_heartbeat", "lease.heartbeat")]))
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        lease = a.try_acquire("d1")
        backdate(lease.path, 60.0)
        assert lease.heartbeat()  # the wedged process believes it is fine
        b = LeaseBoard(tmp_path, owner="b", stale_after=5.0)
        uninstall()  # the thief is a healthy process
        stolen = b.try_acquire("d1")
        assert stolen is not None and stolen.stolen


class TestBoardBookkeeping:
    def test_heartbeat_held_refreshes_every_lease(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        leases = [a.try_acquire(f"d{i}") for i in range(3)]
        for lease in leases:
            backdate(lease.path, 60.0)
        assert a.heartbeat_held(min_interval=0.0) == 3
        for lease in leases:
            assert time.time() - lease.path.stat().st_mtime < 5.0

    def test_release_all(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        for i in range(3):
            a.try_acquire(f"d{i}")
        a.release_all()
        assert a.stats()["held"] == 0
        assert LeaseBoard(tmp_path, owner="b").try_acquire("d0") is not None

    def test_active_lists_owner_and_staleness(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", stale_after=5.0)
        fresh = a.try_acquire("d1")
        old = a.try_acquire("d2")
        backdate(old.path, 60.0)
        rows = {row["digest"]: row for row in a.active()}
        assert rows["d1"]["owner"] == "a" and not rows["d1"]["stale"]
        assert rows["d2"]["stale"]
        assert fresh is not None
