"""Tests for the progress tracker."""

from __future__ import annotations

import io

from repro.exec import ProgressTracker
from repro.runtime import Instrumentation


def _summary(phase: str, seconds: float, **counters: int):
    inst = Instrumentation()
    inst.add_seconds(phase, seconds)
    for name, value in counters.items():
        inst.count(name, value)
    return inst.summary()


class TestProgressTracker:
    def test_counts_done_cached_and_statuses(self):
        tracker = ProgressTracker()
        tracker.begin(3)
        tracker.job_done("a", status="OK")
        tracker.job_done("b", status="TO")
        tracker.job_done("c", status="OK", cached=True)
        snap = tracker.snapshot()
        assert snap["total"] == 3
        assert snap["done"] == 3
        assert snap["cached"] == 1
        assert snap["by_status"] == {"OK": 2, "TO": 1}

    def test_begin_is_cumulative_across_batches(self):
        tracker = ProgressTracker()
        tracker.begin(2)
        tracker.begin(3)
        assert tracker.snapshot()["total"] == 5

    def test_merges_run_summaries(self):
        tracker = ProgressTracker()
        tracker.job_done("a", summary=_summary("job", 1.5, fit_runs=1))
        tracker.job_done("b", summary=_summary("job", 2.5, fit_runs=1))
        merged = tracker.summary()
        assert merged.phase_seconds["job"] == 4.0
        assert merged.counters["fit_runs"] == 2

    def test_render_mentions_failures_and_retries(self):
        tracker = ProgressTracker()
        tracker.begin(2)
        tracker.job_retried("a")
        tracker.job_failed("a", "boom")
        tracker.job_done("b", status="TO")
        line = tracker.render()
        assert "jobs 2/2 done" in line
        assert "1 TO" in line
        assert "1 retried" in line
        assert "1 failed" in line

    def test_stream_gets_live_line_and_final_newline(self):
        stream = io.StringIO()
        tracker = ProgressTracker(stream=stream)
        tracker.begin(1)
        tracker.job_done("a")
        tracker.close()
        text = stream.getvalue()
        assert "\r" in text
        assert text.endswith("\n")

    def test_silent_without_stream(self):
        tracker = ProgressTracker()
        tracker.begin(1)
        tracker.job_done("a")
        tracker.close()  # no stream: must not raise
