"""Tests for JobSpec and grid expansion."""

from __future__ import annotations

import pytest

from repro.exec import JobSpec, grid
from repro.experiments import FAST
from repro.training import FineTuneStrategy


class TestJobSpec:
    def test_normalises_short_dataset_names(self):
        short = JobSpec(dataset="Vowels", model="MOMENT")
        full = JobSpec(dataset="JapaneseVowels", model="MOMENT")
        assert short == full
        assert hash(short) == hash(full)
        assert short.dataset == "JapaneseVowels"

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown paper model"):
            JobSpec(dataset="Heartbeat", model="moment-tiny")

    def test_kwargs_normalised_and_hashable(self):
        a = JobSpec(dataset="Heartbeat", model="ViT", adapter="patch_pca",
                    adapter_kwargs={"patch_window_size": 8})
        b = JobSpec(dataset="Heartbeat", model="ViT", adapter="patch_pca",
                    adapter_kwargs=(("patch_window_size", 8),))
        assert a == b
        assert a.adapter_options == {"patch_window_size": 8}
        assert {a: 1}[b] == 1

    def test_strategy_coerced_from_string(self):
        spec = JobSpec(dataset="Heartbeat", model="MOMENT", strategy="full")
        assert spec.strategy is FineTuneStrategy.FULL

    def test_simulate_as_self_normalised_to_none(self):
        spec = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca",
                       simulate_adapter_as="pca")
        plain = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca")
        assert spec == plain
        assert spec.simulate_adapter_as is None

    def test_simulate_as_changes_result_key(self):
        fingerprint = "cafe" * 16
        base = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="scaled_pca")
        sim = base.replace(simulate_adapter_as="pca")
        assert base.result_key(fingerprint) != sim.result_key(fingerprint)

    def test_round_trips_through_dict(self):
        spec = JobSpec(dataset="NATOPS", model="ViT", adapter="patch_pca",
                       adapter_kwargs={"patch_window_size": 16},
                       strategy=FineTuneStrategy.FULL, seed=3,
                       simulate_adapter_as="pca")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_label_is_compact_and_complete(self):
        spec = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca", seed=2)
        assert spec.label == "Heartbeat/MOMENT/pca/adapter_head/s2"


class TestGrid:
    def test_scalar_axes_accepted(self):
        specs = grid("Heartbeat", "MOMENT", adapters="pca", seeds=1)
        assert specs == (JobSpec(dataset="Heartbeat", model="MOMENT",
                                 adapter="pca", seed=1),)

    def test_cross_product_order_is_dataset_major(self):
        specs = grid(["Heartbeat", "NATOPS"], ["MOMENT"], adapters=["pca"],
                     seeds=(0, 1))
        assert [s.dataset for s in specs] == ["Heartbeat", "Heartbeat",
                                              "NATOPS", "NATOPS"]
        assert [s.seed for s in specs] == [0, 1, 0, 1]

    def test_adapter_entries_with_kwargs_and_sim_as(self):
        specs = grid("Heartbeat", "MOMENT",
                     adapters=[("patch_pca", {"patch_window_size": 8}, "pca")])
        assert specs[0].adapter_options == {"patch_window_size": 8}
        assert specs[0].simulate_adapter_as == "pca"

    def test_aliases_deduplicated(self):
        specs = grid(["Vowels", "JapaneseVowels"], "MOMENT")
        assert len(specs) == 1

    def test_config_seeds_grid(self):
        specs = grid(FAST.datasets[:2], FAST.models, seeds=FAST.seeds)
        assert len(specs) == 2 * len(FAST.models) * len(FAST.seeds)
