"""Tests for experiment configuration and presets."""

from __future__ import annotations

import pytest

from repro.experiments import FAST, PAPER_MODELS, STANDARD, ExperimentConfig, get_preset


class TestPresets:
    def test_fast_and_standard_exist(self):
        assert get_preset("fast") is FAST
        assert get_preset("standard") is STANDARD

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("ludicrous")

    def test_default_covers_all_datasets(self):
        assert len(ExperimentConfig().datasets) == 12

    def test_default_three_seeds(self):
        """The paper averages over 3 seeds."""
        assert len(ExperimentConfig().seeds) == 3

    def test_default_reduced_channels_is_five(self):
        """The paper fixes D' = 5."""
        assert ExperimentConfig().reduced_channels == 5

    def test_lcomb_top_k_is_seven(self):
        assert ExperimentConfig().lcomb_top_k == 7


class TestWith:
    def test_with_overrides(self):
        config = FAST.with_(seeds=(0,), data_scale=0.5)
        assert config.seeds == (0,)
        assert config.data_scale == 0.5
        assert FAST.seeds == (0, 1, 2)  # original untouched

    def test_with_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            FAST.with_(nonexistent=1)


class TestPaperModels:
    def test_both_models_mapped(self):
        assert set(PAPER_MODELS) == {"MOMENT", "ViT"}

    def test_paper_scale_and_runnable_pairs(self):
        assert PAPER_MODELS["MOMENT"] == ("moment-large", "moment-tiny")
        assert PAPER_MODELS["ViT"] == ("vit-base-ts", "vit-tiny")
