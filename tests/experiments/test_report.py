"""Tests for the paper-reference data and the report generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_names
from repro.experiments import ExperimentRunner, FAST, build_report
from repro.experiments import paper_reference as paper


class TestPaperReference:
    def test_table1_covers_all_datasets(self):
        assert set(paper.TABLE1_STATUS) == set(dataset_names())

    def test_table1_counts_match_prose(self):
        """§4: 5 ViT datasets and 2 MOMENT datasets fit under full FT."""
        vit_ok = sum(status[0] == "OK" for status in paper.TABLE1_STATUS.values())
        moment_ok = sum(status[1] == "OK" for status in paper.TABLE1_STATUS.values())
        assert vit_ok == 5
        assert moment_ok == 2

    def test_table2_cells_reference_known_coordinates(self):
        for dataset, model, column in paper.TABLE2_CELLS:
            assert dataset in dataset_names()
            assert model in ("MOMENT", "ViT")
            assert column in ("head", "pca", "lcomb", "lcomb_top_k")

    def test_table45_complete_grids(self):
        for table in (paper.TABLE4_MOMENT, paper.TABLE5_VIT):
            assert set(table) == set(dataset_names())
            for cells in table.values():
                assert set(cells) == {"PCA", "Scaled PCA", "Patch_8", "Patch_16"}

    def test_accuracies_in_unit_interval(self):
        for value in paper.TABLE2_CELLS.values():
            if isinstance(value, paper.PaperCell):
                assert 0.0 <= value.mean <= 1.0
                assert value.std >= 0.0

    def test_cell_format(self):
        assert str(paper.PaperCell(0.593, 0.032)) == "0.593±0.032"

    def test_headline_claims_consistent_with_table1(self):
        claims = paper.HEADLINE_CLAIMS
        assert claims["MOMENT"]["lcomb_full_ft_ok"] / claims["MOMENT"]["full_ft_ok"] == pytest.approx(4.5)
        assert claims["ViT"]["lcomb_full_ft_ok"] / claims["ViT"]["full_ft_ok"] == pytest.approx(2.4)


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        runner = ExperimentRunner(
            FAST.with_(
                seeds=(0,),
                datasets=("JapaneseVowels", "NATOPS"),
                data_scale=0.05,
                max_length=32,
                pretrain_steps=2,
                head_epochs=4,
                joint_epochs=2,
                full_epochs=2,
            )
        )
        return build_report(runner)

    def test_contains_all_sections(self, report):
        for heading in (
            "Headline claims",
            "Table 1",
            "Table 2",
            "Table 4",
            "Table 5",
            "Figure 1",
            "Figure 4",
            "Figure 5",
        ):
            assert heading in report

    def test_status_agreement_reported(self, report):
        assert "Status agreement: 4/4 cells." in report

    def test_paper_values_quoted(self, report):
        # Vowels MOMENT head cell from the paper
        assert "0.885±0.002" in report

    def test_is_markdown(self, report):
        assert report.startswith("# EXPERIMENTS")
        assert "| Model" in report
