"""Tests for the experiment runner (simulation gating + caching)."""

from __future__ import annotations

import pytest

from repro.experiments import FAST, ExperimentRunner
from repro.resources import RunStatus
from repro.training import FineTuneStrategy


@pytest.fixture(scope="module")
def runner():
    config = FAST.with_(
        seeds=(0,),
        datasets=("JapaneseVowels", "DuckDuckGeese"),
        data_scale=0.05,
        max_length=32,
        pretrain_steps=2,
        head_epochs=3,
        joint_epochs=2,
        full_epochs=2,
    )
    return ExperimentRunner(config)


class TestGating:
    def test_com_job_skips_training(self, runner):
        """DuckDuckGeese full FT is COM at paper scale: no accuracy."""
        result = runner.run(
            "DuckDuckGeese", "MOMENT", adapter="none", strategy=FineTuneStrategy.FULL
        )
        assert result.status is RunStatus.OUT_OF_MEMORY
        assert result.accuracy is None
        assert result.measured_seconds == 0.0
        assert result.cell == "COM"

    def test_ok_job_trains_and_scores(self, runner):
        result = runner.run(
            "JapaneseVowels", "MOMENT", adapter="pca", strategy=FineTuneStrategy.ADAPTER_HEAD
        )
        assert result.status is RunStatus.OK
        assert 0.0 <= result.accuracy <= 1.0
        assert result.measured_seconds > 0
        assert result.cell == f"{result.accuracy:.3f}"

    def test_simulated_attached(self, runner):
        result = runner.run("JapaneseVowels", "ViT", adapter="pca")
        assert result.simulated.seconds > 0
        assert result.simulated.peak_memory_bytes > 0


class TestCaching:
    def test_identical_jobs_cached(self, runner):
        a = runner.run("JapaneseVowels", "MOMENT", adapter="svd")
        b = runner.run("JapaneseVowels", "MOMENT", adapter="svd")
        assert a is b

    def test_distinct_seeds_not_cached_together(self, runner):
        a = runner.run("JapaneseVowels", "MOMENT", adapter="svd", seed=0)
        b = runner.run("JapaneseVowels", "MOMENT", adapter="svd", seed=1)
        assert a is not b

    def test_adapter_kwargs_key_cache(self, runner):
        a = runner.run(
            "JapaneseVowels", "MOMENT", adapter="patch_pca",
            adapter_kwargs={"patch_window_size": 8}, simulate_adapter_as="pca",
        )
        b = runner.run(
            "JapaneseVowels", "MOMENT", adapter="patch_pca",
            adapter_kwargs={"patch_window_size": 16}, simulate_adapter_as="pca",
        )
        assert a is not b

    def test_run_seeds_returns_per_seed(self, runner):
        results = runner.run_seeds("JapaneseVowels", "ViT", adapter="var")
        assert len(results) == 1  # one configured seed
        assert results[0].seed == 0


class TestDeterminism:
    def test_same_config_same_accuracy(self):
        def fresh():
            config = FAST.with_(
                seeds=(0,), datasets=("JapaneseVowels",), data_scale=0.05,
                max_length=32, pretrain_steps=2, head_epochs=3,
            )
            return ExperimentRunner(config).run("JapaneseVowels", "MOMENT", adapter="pca")

        assert fresh().accuracy == fresh().accuracy
