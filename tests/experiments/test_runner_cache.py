"""Cross-process cache behaviour of the experiment runner.

The acceptance criterion of the ``repro.runtime`` refactor: a repeated
sweep in a *fresh* runner with a warm disk cache performs **zero**
pretraining steps and **zero** frozen-encoder forward passes (asserted
via the store/instrumentation counters), while a cold-cache run is
numerically identical to the store-less path for a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import FAST, ExperimentRunner
from repro.runtime import ArtifactStore
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


def tiny_config():
    return FAST.with_(
        seeds=(0,),
        datasets=("JapaneseVowels",),
        data_scale=0.05,
        max_length=32,
        pretrain_steps=2,
        head_epochs=3,
        joint_epochs=2,
        full_epochs=2,
    )


JOBS = (
    {"adapter": "pca", "strategy": FineTuneStrategy.ADAPTER_HEAD},
    {"adapter": "none", "strategy": FineTuneStrategy.HEAD},
)


class TestWarmDiskCache:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("repro_cache")

    @pytest.fixture(scope="class")
    def cold(self, cache_dir):
        runner = ExperimentRunner(tiny_config(), cache_dir=str(cache_dir))
        results = [runner.run("JapaneseVowels", "MOMENT", **job) for job in JOBS]
        return runner, results

    def test_cold_run_actually_trains(self, cold):
        runner, results = cold
        assert runner.instrumentation.counter("pretrain_runs") == 1  # shared across jobs
        assert runner.instrumentation.counter("fit_runs") == len(JOBS)
        assert all(r.accuracy is not None for r in results)

    def test_warm_fresh_runner_skips_all_work(self, cold, cache_dir):
        _, cold_results = cold
        # Fresh runner + fresh store: only the disk tier is shared,
        # exactly the situation of a new process over a warm cache.
        fresh = ExperimentRunner(tiny_config(), cache_dir=str(cache_dir))
        warm_results = [fresh.run("JapaneseVowels", "MOMENT", **job) for job in JOBS]

        # zero pretraining steps, zero frozen-encoder forward passes
        assert fresh.instrumentation.counter("pretrain_runs") == 0
        assert fresh.instrumentation.counter("pretrain_steps") == 0
        assert fresh.instrumentation.counter("fit_runs") == 0
        assert fresh.store.stats.hits == len(JOBS)
        assert fresh.store.stats.misses == 0

        for cold_result, warm_result in zip(cold_results, warm_results):
            assert warm_result.accuracy == cold_result.accuracy
            assert warm_result.status is cold_result.status
            assert warm_result.strategy is cold_result.strategy

    def test_cold_cache_numerically_identical_to_storeless(self, cold):
        _, cold_results = cold
        storeless = ExperimentRunner(tiny_config())  # memory-only store
        for job, cached in zip(JOBS, cold_results):
            fresh = storeless.run("JapaneseVowels", "MOMENT", **job)
            assert fresh.accuracy == cached.accuracy


class TestResultRoundTrip:
    def test_to_meta_from_meta_identity(self):
        runner = ExperimentRunner(tiny_config())
        result = runner.run("JapaneseVowels", "MOMENT", adapter="pca")
        clone = type(result).from_meta(result.to_meta())
        assert clone == result

    def test_com_job_round_trips(self):
        runner = ExperimentRunner(tiny_config())
        result = runner.run(
            "DuckDuckGeese", "MOMENT", adapter="none", strategy=FineTuneStrategy.FULL
        )
        clone = type(result).from_meta(result.to_meta())
        assert clone == result
        assert clone.accuracy is None


class TestKeyHygiene:
    def test_sweep_coordinates_do_not_invalidate_jobs(self):
        """Restricting config.datasets/seeds must not change job keys."""
        store = ArtifactStore()
        wide = ExperimentRunner(
            tiny_config().with_(datasets=("JapaneseVowels", "DuckDuckGeese")),
            store=store,
        )
        wide.run("JapaneseVowels", "MOMENT", adapter="pca")
        narrow = ExperimentRunner(tiny_config(), store=store)
        hits_before = store.stats.hits
        narrow.run("JapaneseVowels", "MOMENT", adapter="pca")
        assert store.stats.hits == hits_before + 1
        assert narrow.instrumentation.counter("fit_runs") == 0

    def test_training_knobs_do_invalidate_jobs(self):
        store = ArtifactStore()
        a = ExperimentRunner(tiny_config(), store=store)
        a.run("JapaneseVowels", "MOMENT", adapter="pca")
        b = ExperimentRunner(tiny_config().with_(head_epochs=4), store=store)
        b.run("JapaneseVowels", "MOMENT", adapter="pca")
        assert b.instrumentation.counter("fit_runs") == 1

    def test_seeds_do_not_share_store_entries(self):
        """Same data through two pretraining seeds: no cross-contamination."""
        store = ArtifactStore()
        runner = ExperimentRunner(tiny_config().with_(seeds=(0, 1)), store=store)
        a = runner.run("JapaneseVowels", "MOMENT", adapter="pca", seed=0)
        b = runner.run("JapaneseVowels", "MOMENT", adapter="pca", seed=1)
        assert runner.instrumentation.counter("pretrain_runs") == 2
        assert runner.instrumentation.counter("fit_runs") == 2
        assert a is not b


class TestCacheAblationBypass:
    def test_use_embedding_cache_false_bypasses_store(self, rng):
        """The A2 ablation must not read or write the artifact store."""
        from repro.data import load_dataset
        from repro.models import build_model
        from repro.adapters import make_adapter

        dataset = load_dataset("JapaneseVowels", seed=0, scale=0.05, max_length=32)
        store = ArtifactStore()
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(
            model, make_adapter("pca", 5), dataset.num_classes, seed=0, store=store
        )
        config = TrainConfig(epochs=2, batch_size=16, seed=0)
        report = pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=config,
            use_embedding_cache=False,
        )
        pipeline.score(dataset.x_test, dataset.y_test)
        assert not report.used_embedding_cache
        assert len(store) == 0
        assert store.stats.snapshot() == {
            "hits": 0, "misses": 0, "puts": 0, "evictions": 0, "corrupt": 0,
        }

    def test_cached_fit_populates_store(self, rng):
        from repro.data import load_dataset
        from repro.models import build_model
        from repro.adapters import make_adapter

        dataset = load_dataset("JapaneseVowels", seed=0, scale=0.05, max_length=32)
        store = ArtifactStore()
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(
            model, make_adapter("pca", 5), dataset.num_classes, seed=0, store=store
        )
        report = pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=2, batch_size=16, seed=0),
        )
        assert report.used_embedding_cache
        assert len(store) == 1
        assert report.summary is not None
        assert report.summary.counters["cache_misses"] == 1
        # a refit of the identical configuration hits
        refit = pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=2, batch_size=16, seed=0),
        )
        assert refit.summary.counters["cache_hits"] == 1
