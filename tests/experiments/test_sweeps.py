"""Tests for the sweep API."""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.experiments import sweep_adapters, sweep_reduced_channels
from repro.training import TrainConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NATOPS", seed=0, scale=0.1, max_length=32, normalize=False)


@pytest.fixture(scope="module")
def quick_config():
    return TrainConfig(epochs=3, batch_size=16, seed=0)


class TestChannelSweep:
    def test_points_structure(self, dataset, quick_config):
        points = sweep_reduced_channels(
            dataset, channel_grid=(2, 5), config=quick_config
        )
        assert [p.label for p in points] == ["D'=2", "D'=5"]
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
            assert point.wall_seconds > 0
            assert point.simulated.seconds > 0

    def test_simulated_cost_monotone(self, dataset, quick_config):
        points = sweep_reduced_channels(
            dataset, channel_grid=(2, 8), config=quick_config
        )
        assert points[0].simulated.seconds < points[1].simulated.seconds

    def test_skips_too_many_channels(self, dataset, quick_config, caplog):
        """An oversized D' is skipped and marked, not fatal mid-grid."""
        with caplog.at_level("WARNING", logger="repro.experiments.sweeps"):
            points = sweep_reduced_channels(
                dataset, channel_grid=(2, 999), config=quick_config
            )
        assert [p.label for p in points] == ["D'=2", "D'=999"]
        assert points[0].accuracy is not None and not points[0].skipped
        assert points[1].skipped and points[1].accuracy is None
        assert "999" in points[1].note
        assert any("999" in record.message for record in caplog.records)


class TestAdapterSweep:
    def test_covers_requested_adapters(self, dataset, quick_config):
        points = sweep_adapters(
            dataset, adapters=("none", "pca", "var"), config=quick_config
        )
        assert [p.label for p in points] == ["none", "pca", "var"]

    def test_no_adapter_simulated_slower_than_pca(self, dataset, quick_config):
        points = sweep_adapters(dataset, adapters=("none", "pca"), config=quick_config)
        by_label = {p.label: p for p in points}
        assert by_label["none"].simulated.seconds > by_label["pca"].simulated.seconds
