"""Tests for table/figure regeneration on a micro configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    FAST,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    headline_claims,
    table1,
    table2,
    table3,
)
from repro.experiments.tables import _mark_best


@pytest.fixture(scope="module")
def runner():
    """Micro config: 2 datasets, 2 seeds, tiny training budgets."""
    config = FAST.with_(
        seeds=(0, 1),
        datasets=("JapaneseVowels", "NATOPS"),
        data_scale=0.05,
        max_length=32,
        pretrain_steps=2,
        head_epochs=4,
        joint_epochs=2,
        full_epochs=2,
    )
    return ExperimentRunner(config)


class TestTable3:
    def test_matches_registry(self):
        result = table3()
        assert len(result.rows) == 12
        duck = result.rows[0]
        assert duck[0].startswith("DuckDuckGeese")
        assert duck[3] == "1345"

    def test_render_contains_headers(self):
        assert "Sequence Len" in table3().render()


class TestTable1:
    def test_structure(self, runner):
        result = table1(runner)
        assert len(result.rows) == 2
        assert result.headers == ["Dataset", "MOMENT", "ViT"]

    def test_ok_cells_have_mean_std(self, runner):
        result = table1(runner)
        vowels = result.rows[0]
        assert "±" in vowels[1]  # MOMENT on Vowels fits
        natops = result.rows[1]
        assert natops[1] == "TO"  # MOMENT on NATOPS times out

    def test_values_recorded(self, runner):
        result = table1(runner)
        assert result.values[("JapaneseVowels", "MOMENT", "none")] is not None
        assert result.values[("NATOPS", "MOMENT", "none")] is None


class TestTable2:
    def test_structure_and_marking(self, runner):
        result = table2(runner)
        assert len(result.rows) == 4  # 2 datasets x 2 models
        rendered = result.render()
        assert "**" in rendered  # best marked bold
        assert "pca" in result.headers

    def test_all_cells_have_values(self, runner):
        result = table2(runner)
        for (dataset, model, column), values in result.values.items():
            assert values is not None, (dataset, model, column)
            assert len(values) == 2  # two seeds


class TestMarkBest:
    def test_marks_best_and_second(self):
        cells = ["0.5", "0.9", "0.7"]
        values = [[0.5], [0.9], [0.7]]
        marked = _mark_best(cells, values)
        assert marked == ["0.5", "**0.9**", "*0.7*"]

    def test_handles_failed_cells(self):
        marked = _mark_best(["TO", "0.9"], [None, [0.9]])
        assert marked[0] == "TO"
        assert marked[1] == "**0.9**"


class TestFigures:
    def test_figure1_series_complete(self, runner):
        result = figure1(runner)
        for model in ("MOMENT", "ViT"):
            sims = result.series[f"{model}/simulated_s"]
            assert set(sims) == {"no_adapter", "pca", "svd", "rand_proj", "var", "lcomb"}
            assert all(v > 0 for v in sims.values())

    def test_figure1_adapters_faster_than_none_for_moment(self, runner):
        sims = figure1(runner).series["MOMENT/simulated_s"]
        assert sims["pca"] < sims["no_adapter"]
        assert sims["lcomb"] > sims["pca"]

    def test_figure3_pairs(self, runner):
        result = figure3(runner)
        assert "MOMENT/lcomb" in result.series
        assert "ViT/lcomb_top_k" in result.series
        assert set(result.series["MOMENT/lcomb"]) == {"JapaneseVowels", "NATOPS"}

    def test_figure4_rank_properties(self, runner):
        result = figure4(runner)
        for model in ("MOMENT", "ViT"):
            ranks = result.series[model]
            assert len(ranks) == 5
            # ranks of M methods average to (M+1)/2
            assert np.mean(list(ranks.values())) == pytest.approx(3.0)

    def test_figure5_pvalues_valid(self, runner):
        result = figure5(runner)
        for model in ("MOMENT", "ViT"):
            for method, row in result.series.items():
                if not method.startswith(f"{model}/") or method.endswith("min_p"):
                    continue
                for p in row.values():
                    assert 0.0 <= p <= 1.0

    def test_figure6_compares_strategies(self, runner):
        result = figure6(runner)
        assert "MOMENT/adapter+head" in result.series
        assert "MOMENT/full" in result.series

    def test_headline_claims_structure(self, runner):
        result = headline_claims(runner)
        for model in ("MOMENT", "ViT"):
            claims = result.series[model]
            assert {"speedup", "full_ft_ok", "lcomb_full_ft_ok", "fit_ratio"} <= set(claims)
            assert claims["speedup"] > 1.0

    def test_renders_are_text(self, runner):
        for builder in (figure1, figure3, figure4, figure5, figure6, headline_claims):
            text = builder(runner).render()
            assert isinstance(text, str)
            assert len(text) > 20


class TestLatexExport:
    def test_table3_to_latex(self):
        text = table3().to_latex(label="tab:datasets")
        assert "\\begin{tabular}" in text
        assert "\\label{tab:datasets}" in text
        assert "DuckDuckGeese" in text

    def test_emphasis_markers_translated(self, runner):
        text = table2(runner).to_latex()
        assert "**" not in text
        assert "\\textbf{" in text


class TestFigure2:
    def test_series_and_band(self, runner):
        from repro.experiments import figure2

        result = figure2(runner)
        for model in ("MOMENT", "ViT"):
            for label in ("pws=1 (PCA)", "pws=8", "pws=16"):
                series = result.series[f"{model}/{label}"]
                assert set(series) == {"JapaneseVowels", "NATOPS"}
        assert "pws=8" in result.text
