"""Tests for the FoundationModel base (channel-independent encoding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import MomentModel, ViTModel


@pytest.fixture(scope="module")
def model():
    m = MomentModel("moment-tiny", seed=0)
    m.eval()
    return m


class TestEncodePaths:
    def test_array_and_tensor_paths_agree(self, model, rng):
        """The numpy fast path and the differentiable tensor path must
        produce identical embeddings."""
        x = rng.normal(size=(3, 32, 4))
        with nn.no_grad():
            from_array = model.encode(x).data
            from_tensor = model.encode(nn.Tensor(x)).data
        np.testing.assert_allclose(from_array, from_tensor, atol=1e-12)

    def test_single_channel(self, model, rng):
        out = model.encode(rng.normal(size=(2, 32, 1)))
        assert out.shape == (2, 64)

    def test_single_sample(self, model, rng):
        out = model.encode(rng.normal(size=(1, 32, 3)))
        assert out.shape == (1, 64)

    def test_channel_permutation_invariance(self, model, rng):
        """Mean-pooling over channels makes the embedding invariant to
        channel order — a structural property of the architecture."""
        x = rng.normal(size=(2, 32, 6))
        perm = np.random.default_rng(1).permutation(6)
        a = model.encode(x).data
        b = model.encode(x[:, :, perm]).data
        # Permuting float32 summands reorders the reduction; bitwise
        # equality is not guaranteed, only float32-level closeness.
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_repr_mentions_config_and_params(self, model):
        text = repr(model)
        assert "moment-tiny" in text
        assert "params=" in text


class TestVitEncodePaths:
    def test_array_and_tensor_paths_agree(self, rng):
        model = ViTModel("vit-tiny", seed=0)
        model.eval()
        x = rng.normal(size=(2, 48, 3))
        with nn.no_grad():
            np.testing.assert_allclose(
                model.encode(x).data, model.encode(nn.Tensor(x)).data, atol=1e-12
            )

    def test_embedding_finite_on_extreme_inputs(self, rng):
        model = ViTModel("vit-tiny", seed=0)
        model.eval()
        x = 1e6 * rng.normal(size=(2, 48, 2))
        assert np.isfinite(model.encode(x).data).all()


class TestGradientFlowThroughEncode:
    def test_lcomb_style_input_gradients(self, model, rng):
        """Gradients must reach an upstream (adapter) parameter through
        the full encode path even with the encoder frozen."""
        model.freeze()
        try:
            weight = nn.Parameter(rng.normal(size=(3, 6)) * 0.1)
            x = nn.Tensor(rng.normal(size=(2, 32, 6)))
            reduced = x @ weight.transpose()
            out = model.encode(reduced)
            (out**2).mean().backward()
            assert weight.grad is not None
            assert np.abs(weight.grad).sum() > 0
            # frozen encoder accumulated nothing
            assert all(p.grad is None for p in model.parameters())
        finally:
            model.unfreeze()
