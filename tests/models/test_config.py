"""Tests for model configs, incl. the analytic parameter counts the
resource simulator relies on."""

from __future__ import annotations

import dataclasses

import pytest

from repro.models import MODEL_CONFIGS, build_model, get_config
from repro.models.config import RUNNABLE_COUNTERPART, ModelConfig


class TestRegistry:
    def test_known_configs_present(self):
        assert {"moment-large", "vit-base-ts", "moment-tiny", "vit-tiny"} <= set(MODEL_CONFIGS)

    def test_get_config_unknown(self):
        with pytest.raises(KeyError):
            get_config("gpt-5")

    def test_get_config_override(self):
        cfg = get_config("moment-tiny", num_layers=5)
        assert cfg.num_layers == 5
        assert get_config("moment-tiny").num_layers == 2  # original untouched

    def test_runnable_counterparts(self):
        assert RUNNABLE_COUNTERPART["moment-large"] == "moment-tiny"
        assert RUNNABLE_COUNTERPART["vit-base-ts"] == "vit-tiny"


class TestValidation:
    def test_rejects_bad_family(self):
        with pytest.raises(ValueError):
            ModelConfig("x", "bert", 64, 2, 4, 128, 8, 8, 512)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig("x", "moment", 65, 2, 4, 128, 8, 8, 512)

    def test_rejects_gappy_stride(self):
        with pytest.raises(ValueError):
            ModelConfig("x", "moment", 64, 2, 4, 128, 8, 16, 512)


class TestGeometry:
    def test_tokens_per_channel(self):
        moment = get_config("moment-large")
        assert moment.tokens_per_channel(512) == 64
        assert moment.tokens_per_channel(1000) == 64  # capped at context
        assert moment.tokens_per_channel(4) == 1  # padded to one patch

    def test_vit_overlapping_tokens(self):
        vit = get_config("vit-base-ts")
        assert vit.tokens_per_channel(512) == (512 - 16) // 4 + 1

    @pytest.mark.parametrize("name", ["moment-tiny", "vit-tiny"])
    def test_analytic_count_matches_built_model(self, name):
        """The resource model's analytic formula must equal reality."""
        config = get_config(name)
        model = build_model(name, seed=0)
        assert config.encoder_parameter_count() == model.num_parameters()

    def test_paper_scale_parameter_counts(self):
        """moment-large ~ 300M (paper: 341M incl. extras); vit ~ 8M."""
        moment = get_config("moment-large").encoder_parameter_count()
        vit = get_config("vit-base-ts").encoder_parameter_count()
        assert 2.5e8 < moment < 3.6e8
        assert 5e6 < vit < 1.0e7

    def test_config_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_config("moment-tiny").d_model = 1
