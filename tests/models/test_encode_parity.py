"""Three-way encode parity: ndarray vs Tensor vs channel-batched.

``FoundationModel.encode`` has three entry shapes — a raw ndarray
(single pass), an ``nn.Tensor`` (the differentiable path), and a
``channel_batch``-chunked inference pass — plus a compiled-replay
fast path under each.  All of them must agree on the same data, and
the compiled path must agree *bitwise* with eager.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import build_model


def _data(n=6, t=64, d=3, seed=3):
    return np.random.default_rng(seed).standard_normal((n, t, d))


@pytest.fixture(params=["moment-tiny", "vit-tiny"])
def model(request):
    m = build_model(request.param, seed=0)
    m.eval()
    m.freeze()
    return m


class TestThreeWayParity:
    def test_ndarray_tensor_and_chunked_agree(self, model):
        x = _data()
        with nn.no_grad():
            from_array = model.encode(x).data
            from_tensor = model.encode(nn.Tensor(x)).data
            chunked = model.encode(x, channel_batch=5).data
        # ndarray and Tensor paths traverse identical op sequences on
        # identically-prepared inputs: exact agreement.
        np.testing.assert_array_equal(from_array, from_tensor)
        # Chunking changes the pooling association order; agreement is
        # to dtype tolerance, not bitwise.
        rtol = 1e-5 if model.dtype == np.float32 else 1e-12
        np.testing.assert_allclose(chunked, from_array, rtol=rtol, atol=rtol)

    def test_compiled_replay_is_bit_identical_to_eager(self, model):
        x = _data()
        with nn.no_grad(), nn.graph.compile_disabled():
            eager = model.encode(x).data
        with nn.no_grad():
            compiled = model.encode(x).data
        stats = model._graph_cache.stats()
        assert stats["compiled"] >= 1 and stats["fallbacks"] == 0
        np.testing.assert_array_equal(compiled, eager)

    def test_chunked_compiled_matches_chunked_eager(self, model):
        x = _data()
        with nn.no_grad(), nn.graph.compile_disabled():
            eager = model.encode(x, channel_batch=6).data
        with nn.no_grad():
            compiled = model.encode(x, channel_batch=6).data
        np.testing.assert_array_equal(compiled, eager)

    def test_training_mode_never_replays(self, model):
        model.train()
        x = _data()
        with nn.no_grad():
            model.encode(x)
        assert model._graph_cache.stats()["misses"] == 0

    def test_trainable_encoder_never_replays(self, model):
        model.unfreeze()
        model.encode(nn.Tensor(_data()))
        assert model._graph_cache.stats()["misses"] == 0

    def test_load_state_dict_invalidates_graphs(self, model):
        x = _data()
        with nn.no_grad():
            model.encode(x)
        assert len(model._graph_cache) > 0
        model.load_state_dict(model.state_dict())
        assert len(model._graph_cache) == 0
