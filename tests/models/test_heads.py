"""Tests for the classification head."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import ClassificationHead


class TestClassificationHead:
    def test_output_shape(self, rng):
        head = ClassificationHead(16, 4, rng=rng)
        out = head(nn.Tensor(rng.normal(size=(8, 16))))
        assert out.shape == (8, 4)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            ClassificationHead(16, 1)

    def test_dropout_only_in_training(self, rng):
        head = ClassificationHead(16, 3, dropout=0.5, rng=rng)
        x = nn.Tensor(rng.normal(size=(4, 16)))
        head.eval()
        np.testing.assert_array_equal(head(x).data, head(x).data)
        head.train()
        assert not np.array_equal(head(x).data, head(x).data)

    def test_parameter_count(self, rng):
        head = ClassificationHead(16, 4, rng=rng)
        assert head.num_parameters() == 16 * 4 + 4

    def test_gradients_flow(self, rng):
        head = ClassificationHead(8, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(3, 8)))
        (head(x) ** 2).sum().backward()
        assert head.linear.weight.grad is not None

    def test_deterministic_init(self):
        a = ClassificationHead(8, 3, rng=np.random.default_rng(4))
        b = ClassificationHead(8, 3, rng=np.random.default_rng(4))
        np.testing.assert_array_equal(a.linear.weight.data, b.linear.weight.data)
