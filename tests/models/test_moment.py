"""Tests for the MOMENT-style foundation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import MomentModel, get_config


@pytest.fixture
def model():
    return MomentModel("moment-tiny", seed=0)


class TestConstruction:
    def test_rejects_vit_config(self):
        with pytest.raises(ValueError):
            MomentModel("vit-tiny")

    def test_embed_dim(self, model):
        assert model.embed_dim == 64

    def test_deterministic_by_seed(self):
        a = MomentModel("moment-tiny", seed=5)
        b = MomentModel("moment-tiny", seed=5)
        x = np.random.default_rng(0).normal(size=(2, 32, 3))
        np.testing.assert_array_equal(a.encode(x).data, b.encode(x).data)


class TestEncoding:
    def test_encode_univariate_shape(self, model, rng):
        out = model.encode_univariate(nn.Tensor(rng.normal(size=(4, 32))))
        assert out.shape == (4, 4, 64)  # 32 / patch 8 = 4 patches

    def test_encode_multivariate_shape(self, model, rng):
        out = model.encode(rng.normal(size=(3, 32, 5)))
        assert out.shape == (3, 64)

    def test_truncates_beyond_context(self, model, rng):
        long_x = rng.normal(size=(2, 600, 2))
        out = model.encode(long_x)
        trunc = model.encode(long_x[:, :512, :])
        np.testing.assert_allclose(out.data, trunc.data, atol=1e-12)

    def test_pads_short_series(self, model, rng):
        out = model.encode(rng.normal(size=(2, 5, 2)))  # shorter than patch 8
        assert out.shape == (2, 64)

    def test_channel_mean_pooling(self, model, rng):
        """Duplicating every channel must not change the pooled embedding."""
        x = rng.normal(size=(2, 32, 3))
        doubled = np.concatenate([x, x], axis=2)
        np.testing.assert_allclose(
            model.encode(x).data, model.encode(doubled).data, rtol=1e-5, atol=1e-6
        )

    def test_chunked_inference_matches_full(self, model, rng):
        x = rng.normal(size=(2, 32, 6))
        model.eval()
        with nn.no_grad():
            full = model.encode(x).data
            chunked = model.encode(x, channel_batch=4).data
        np.testing.assert_allclose(full, chunked, atol=1e-10)

    def test_chunking_rejected_in_grad_mode(self, model, rng):
        x = rng.normal(size=(2, 32, 6))
        with pytest.raises(RuntimeError):
            model.encode(x, channel_batch=4)

    def test_tensor_input_is_differentiable(self, model, rng):
        x = nn.Tensor(rng.normal(size=(2, 32, 3)), requires_grad=True)
        model.encode(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestReconstruction:
    def test_shapes(self, model, rng):
        x = nn.Tensor(rng.normal(size=(3, 32)))
        mask = np.zeros((3, 4), dtype=bool)
        mask[:, 1] = True
        recon, target = model.reconstruct(x, mask)
        assert recon.shape == (3, 4, 8)
        assert target.shape == (3, 4, 8)

    def test_target_is_input_patches(self, model, rng):
        x_data = rng.normal(size=(2, 32))
        mask = np.zeros((2, 4), dtype=bool)
        mask[:, 0] = True
        _, target = model.reconstruct(nn.Tensor(x_data), mask)
        np.testing.assert_array_equal(target.data[0, 0], x_data[0, :8])

    def test_mask_shape_validated(self, model, rng):
        with pytest.raises(ValueError):
            model.reconstruct(nn.Tensor(rng.normal(size=(2, 32))), np.zeros((2, 7), dtype=bool))

    def test_mask_changes_output(self, model, rng):
        """Masked tokens use the mask embedding, so outputs differ."""
        x = nn.Tensor(rng.normal(size=(1, 32)))
        no_mask = np.zeros((1, 4), dtype=bool)
        with_mask = no_mask.copy()
        with_mask[0, 2] = True
        a, _ = model.reconstruct(x, no_mask)
        b, _ = model.reconstruct(x, with_mask)
        assert not np.allclose(a.data, b.data)

    def test_reconstruction_grads_reach_mask_token(self, model, rng):
        x = nn.Tensor(rng.normal(size=(2, 32)))
        mask = np.zeros((2, 4), dtype=bool)
        mask[:, 1] = True
        recon, target = model.reconstruct(x, mask)
        from repro.nn import functional as F

        loss = F.masked_mse_loss(recon, target.data, mask[..., None].astype(float))
        loss.backward()
        assert model.mask_token.grad is not None
        assert np.abs(model.mask_token.grad).sum() > 0
