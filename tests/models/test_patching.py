"""Tests for patch tokenisation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.patching import (
    extract_patches,
    flatten_channels,
    num_patches,
    patch_statistics,
)


class TestNumPatches:
    def test_non_overlapping(self):
        assert num_patches(64, 8, 8) == 8

    def test_overlapping(self):
        assert num_patches(512, 16, 8) == 63

    def test_short_series_single_patch(self):
        assert num_patches(5, 8, 8) == 1

    def test_ragged_tail_dropped(self):
        assert num_patches(20, 8, 8) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            num_patches(10, 0, 1)
        with pytest.raises(ValueError):
            num_patches(10, 4, 0)


class TestExtractPatches:
    def test_values_non_overlapping(self):
        x = np.arange(16, dtype=float)[None, :]
        patches = extract_patches(x, 8, 8)
        assert patches.shape == (1, 2, 8)
        np.testing.assert_array_equal(patches[0, 0], np.arange(8))
        np.testing.assert_array_equal(patches[0, 1], np.arange(8, 16))

    def test_values_overlapping(self):
        x = np.arange(12, dtype=float)[None, :]
        patches = extract_patches(x, 4, 2)
        assert patches.shape == (1, 5, 4)
        np.testing.assert_array_equal(patches[0, 1], [2, 3, 4, 5])

    def test_short_input_zero_padded(self):
        x = np.ones((2, 3))
        patches = extract_patches(x, 8, 8)
        assert patches.shape == (2, 1, 8)
        np.testing.assert_array_equal(patches[0, 0], [1, 1, 1, 0, 0, 0, 0, 0])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            extract_patches(np.zeros((2, 3, 4)), 2, 2)


class TestPatchStatistics:
    def test_mean_std(self):
        patches = np.array([[[1.0, 3.0], [2.0, 2.0]]])
        stats = patch_statistics(patches)
        assert stats.shape == (1, 2, 2)
        assert stats[0, 0, 0] == pytest.approx(2.0)  # mean
        assert stats[0, 0, 1] == pytest.approx(1.0, abs=1e-6)  # std
        assert stats[0, 1, 1] == pytest.approx(0.0, abs=1e-6)


class TestFlattenChannels:
    def test_round_trip(self):
        x = np.random.default_rng(0).normal(size=(3, 5, 4))
        flat, n, d = flatten_channels(x)
        assert (n, d) == (3, 4)
        assert flat.shape == (12, 5)
        # channel c of sample i is row i*d + c
        np.testing.assert_array_equal(flat[1 * 4 + 2], x[1, :, 2])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            flatten_channels(np.zeros((3, 4)))
