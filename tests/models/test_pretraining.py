"""Tests for pretraining objectives and the model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MomentModel,
    ViTModel,
    augment_series,
    build_model,
    load_pretrained,
    pretrain_moment,
    pretrain_vit,
    synthetic_pretraining_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    return synthetic_pretraining_corpus(48, 64, np.random.default_rng(0))


class TestCorpus:
    def test_shape_and_normalisation(self, corpus):
        assert corpus.shape == (48, 64)
        np.testing.assert_allclose(corpus.mean(axis=1), 0.0, atol=1e-8)
        stds = corpus.std(axis=1)
        np.testing.assert_allclose(stds[stds > 0.5], 1.0, atol=1e-6)

    def test_heterogeneous(self, corpus):
        """Different rows are genuinely different series."""
        assert np.std([np.ptp(row) for row in corpus]) > 0

    def test_validates_args(self):
        with pytest.raises(ValueError):
            synthetic_pretraining_corpus(0, 10, np.random.default_rng(0))


class TestAugmentation:
    def test_shape_preserved(self, corpus):
        out = augment_series(corpus[:8], np.random.default_rng(1))
        assert out.shape == (8, 64)

    def test_stochastic(self, corpus):
        rng = np.random.default_rng(2)
        a = augment_series(corpus[:4], rng)
        b = augment_series(corpus[:4], rng)
        assert not np.array_equal(a, b)

    def test_correlated_with_source(self, corpus):
        out = augment_series(corpus[:1], np.random.default_rng(3))
        corr = np.corrcoef(out[0], corpus[0])[0, 1]
        assert abs(corr) > 0.3


class TestMomentPretraining:
    def test_loss_decreases(self, corpus):
        model = MomentModel("moment-tiny", seed=0)
        losses = pretrain_moment(model, corpus, steps=25, batch_size=16, seed=0)
        assert len(losses) == 25
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_invalid_mask_ratio(self, corpus):
        model = MomentModel("moment-tiny", seed=0)
        with pytest.raises(ValueError):
            pretrain_moment(model, corpus, steps=1, mask_ratio=1.5)

    def test_model_left_in_eval_mode(self, corpus):
        model = MomentModel("moment-tiny", seed=0)
        pretrain_moment(model, corpus, steps=2)
        assert not model.training


class TestViTPretraining:
    def test_runs_and_records_losses(self, corpus):
        model = ViTModel("vit-tiny", seed=0)
        losses = pretrain_vit(model, corpus, steps=8, batch_size=16, seed=0)
        assert len(losses) == 8
        assert all(np.isfinite(losses))

    def test_weights_change(self, corpus):
        model = ViTModel("vit-tiny", seed=0)
        before = model.patch_embed.weight.data.copy()
        pretrain_vit(model, corpus, steps=3, batch_size=8, seed=0)
        assert not np.array_equal(before, model.patch_embed.weight.data)


class TestLoadPretrained:
    def test_substitutes_paper_scale(self):
        model = load_pretrained("moment-large", pretrain_steps=0)
        assert model.config.name == "moment-tiny"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            load_pretrained("nonexistent")

    def test_zero_steps_is_random_init(self):
        a = load_pretrained("moment-tiny", seed=0, pretrain_steps=0)
        b = build_model("moment-tiny", seed=0)
        np.testing.assert_array_equal(
            a.patch_embed.weight.data, b.patch_embed.weight.data
        )

    def test_disk_cache_round_trip(self, tmp_path):
        a = load_pretrained("vit-tiny", seed=0, pretrain_steps=3, cache_dir=tmp_path)
        cached = list(tmp_path.glob("*.npz"))
        assert len(cached) == 1
        b = load_pretrained("vit-tiny", seed=0, pretrain_steps=3, cache_dir=tmp_path)
        np.testing.assert_array_equal(
            a.patch_embed.weight.data, b.patch_embed.weight.data
        )
