"""Tests for the ViT-style foundation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import ViTModel, get_config


@pytest.fixture
def model():
    return ViTModel("vit-tiny", seed=0)


class TestConstruction:
    def test_rejects_moment_config(self):
        with pytest.raises(ValueError):
            ViTModel("moment-tiny")

    def test_embed_dim(self, model):
        assert model.embed_dim == 48


class TestEncoding:
    def test_overlapping_patch_count(self, model, rng):
        out = model.encode_univariate(nn.Tensor(rng.normal(size=(3, 48))))
        # vit-tiny: patch 16, stride 8 -> (48-16)/8+1 = 5 patches
        assert out.shape == (3, 5, 48)

    def test_encode_multivariate(self, model, rng):
        assert model.encode(rng.normal(size=(2, 48, 4))).shape == (2, 48)

    def test_statistical_tokens_preserve_amplitude(self, model, rng):
        """Patch values are normalised, but mean/std tokens keep scale info."""
        x = rng.normal(size=(1, 48, 1))
        scaled = 10.0 * x
        a = model.encode(x).data
        b = model.encode(scaled).data
        assert not np.allclose(a, b, atol=1e-3)

    def test_contrastive_embed_shape(self, model, rng):
        out = model.contrastive_embed(nn.Tensor(rng.normal(size=(4, 48))))
        assert out.shape == (4, 48)

    def test_constant_patch_does_not_nan(self, model):
        """Zero-variance patches must not divide by zero."""
        out = model.encode(np.zeros((2, 48, 2)))
        assert np.isfinite(out.data).all()

    def test_short_series_padded(self, model, rng):
        out = model.encode(rng.normal(size=(2, 5, 2)))
        assert out.shape == (2, 48)

    def test_gradients_flow_through_tokens(self, model, rng):
        x = nn.Tensor(rng.normal(size=(2, 48)), requires_grad=True)
        model.contrastive_embed(x).sum().backward()
        assert x.grad is not None
        assert model.patch_embed.weight.grad is not None
