"""tests/nn runs under a float64 default dtype.

The nn unit tests predate the float32 dtype policy and exercise the
autodiff stack at full precision: finite-difference gradient checks
use ``eps=1e-6`` (meaningless in float32) and several tests assert
float64 dtypes directly.  Running them under ``default_dtype(float64)``
keeps them what they are — precision tests of the math — while the
dtype policy itself is covered explicitly in ``test_dtype.py``.
"""

import pytest

from repro import nn


@pytest.fixture(autouse=True)
def _float64_default():
    with nn.default_dtype("float64"):
        yield
