"""Tests for multi-head self-attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


@pytest.fixture
def attention(rng):
    return nn.MultiHeadSelfAttention(d_model=16, num_heads=4, rng=rng)


class TestShapes:
    def test_output_shape(self, attention, rng):
        out = attention(Tensor(rng.normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_rejects_wrong_d_model(self, attention, rng):
        with pytest.raises(ValueError):
            attention(Tensor(rng.normal(size=(2, 7, 8))))

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(d_model=10, num_heads=3)


class TestSemantics:
    def test_permutation_equivariance(self, attention, rng):
        """Self-attention without positions commutes with token permutation."""
        x = rng.normal(size=(1, 5, 16))
        perm = np.array([3, 1, 4, 0, 2])
        out = attention(Tensor(x)).data
        out_perm = attention(Tensor(x[:, perm, :])).data
        np.testing.assert_allclose(out[:, perm, :], out_perm, atol=1e-10)

    def test_mask_blocks_attention(self, rng):
        """A token masked from everyone must not influence other outputs."""
        attn = nn.MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        mask = np.ones((4, 4), dtype=bool)
        mask[:, 2] = False  # nobody may attend to token 2
        mask[2, 2] = True   # except itself (avoid all-masked row)
        out_masked = attn(Tensor(x), attn_mask=mask).data
        x_changed = x.copy()
        x_changed[0, 2] += 10.0
        out_changed = attn(Tensor(x_changed), attn_mask=mask).data
        keep = [0, 1, 3]
        np.testing.assert_allclose(out_masked[:, keep], out_changed[:, keep], atol=1e-8)

    def test_batched_mask_shape(self, attention, rng):
        x = Tensor(rng.normal(size=(2, 5, 16)))
        mask = np.ones((2, 5, 5), dtype=bool)
        assert attention(x, attn_mask=mask).shape == (2, 5, 16)

    def test_invalid_mask_ndim(self, attention, rng):
        with pytest.raises(ValueError):
            attention(Tensor(rng.normal(size=(2, 5, 16))), attn_mask=np.ones((5,), dtype=bool))

    def test_gradients_reach_all_projections(self, attention, rng):
        x = Tensor(rng.normal(size=(2, 4, 16)), requires_grad=True)
        (attention(x) ** 2).mean().backward()
        for proj in (attention.query_proj, attention.key_proj, attention.value_proj, attention.out_proj):
            assert proj.weight.grad is not None
            assert np.abs(proj.weight.grad).sum() > 0
        assert x.grad is not None

    def test_deterministic_given_rng(self):
        def build():
            return nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(9))

        x = np.random.default_rng(1).normal(size=(1, 3, 8))
        np.testing.assert_array_equal(build()(Tensor(x)).data, build()(Tensor(x)).data)
