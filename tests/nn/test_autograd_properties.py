"""Property-based tests (hypothesis) for the autodiff engine.

These check algebraic invariants that must hold for *any* input, not
just hand-picked examples: gradient correctness against finite
differences for composed expressions, linearity of reductions, and
softmax simplex membership.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

finite_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def small_arrays(min_dims=1, max_dims=3):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=4),
        elements=finite_floats,
    )


@st.composite
def matrix_pairs(draw):
    """Conformable (m, k) x (k, n) matrices."""
    m = draw(st.integers(1, 4))
    k = draw(st.integers(1, 4))
    n = draw(st.integers(1, 4))
    a = draw(arrays(np.float64, (m, k), elements=finite_floats))
    b = draw(arrays(np.float64, (k, n), elements=finite_floats))
    return a, b


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_grad_is_uniform(data):
    t = Tensor(data, requires_grad=True)
    t.mean().backward()
    np.testing.assert_allclose(t.grad, np.full_like(data, 1.0 / data.size))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), finite_floats)
def test_scalar_mul_grad(data, scalar):
    t = Tensor(data, requires_grad=True)
    (t * scalar).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(data, scalar))


@settings(max_examples=30, deadline=None)
@given(matrix_pairs())
def test_matmul_grad_matches_closed_form(pair):
    a_data, b_data = pair
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).sum().backward()
    ones = np.ones((a_data.shape[0], b_data.shape[1]))
    np.testing.assert_allclose(a.grad, ones @ b_data.T, atol=1e-10)
    np.testing.assert_allclose(b.grad, a_data.T @ ones, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_tanh_grad_identity(data):
    t = Tensor(data, requires_grad=True)
    out = t.tanh()
    out.sum().backward()
    np.testing.assert_allclose(t.grad, 1.0 - np.tanh(data) ** 2, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=5), elements=finite_floats))
def test_softmax_rows_on_simplex(data):
    out = F.softmax(Tensor(data), axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=5), elements=finite_floats), finite_floats)
def test_softmax_shift_invariance(data, shift):
    base = F.softmax(Tensor(data)).data
    shifted = F.softmax(Tensor(data + shift)).data
    np.testing.assert_allclose(base, shifted, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_exp_log_round_trip_grad(data):
    """d/dx log(exp(x)) = 1 everywhere."""
    t = Tensor(data, requires_grad=True)
    t.exp().log().sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data), atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays(min_dims=2, max_dims=2))
def test_reshape_transpose_preserve_grad_sum(data):
    """Pure shape ops must route gradient mass unchanged."""
    t = Tensor(data, requires_grad=True)
    t.transpose().reshape(-1).sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), small_arrays())
def test_add_commutes(a_data, b_data):
    a, b = Tensor(a_data), Tensor(b_data)
    try:
        left = (a + b).data
    except ValueError:
        return  # non-broadcastable shapes: nothing to check
    np.testing.assert_array_equal(left, (b + a).data)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)), elements=finite_floats))
def test_cross_entropy_nonnegative(logits):
    targets = np.zeros(logits.shape[0], dtype=np.int64)
    loss = F.cross_entropy(Tensor(logits), targets)
    assert float(loss.data) >= -1e-12
