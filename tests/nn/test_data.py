"""Tests for ArrayDataset and DataLoader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import ArrayDataset, DataLoader


class TestArrayDataset:
    def test_len_and_indexing(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[np.array([1, 3])]
        np.testing.assert_array_equal(x, [1, 3])
        np.testing.assert_array_equal(y, [2, 6])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(5), np.arange(6))


class TestDataLoader:
    def test_batch_count(self):
        ds = ArrayDataset(np.arange(10))
        assert len(DataLoader(ds, batch_size=3)) == 4
        assert len(DataLoader(ds, batch_size=3, drop_last=True)) == 3

    def test_iterates_all_samples(self):
        ds = ArrayDataset(np.arange(10))
        seen = np.concatenate([batch[0] for batch in DataLoader(ds, batch_size=4)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_drop_last_removes_partial(self):
        ds = ArrayDataset(np.arange(10))
        batches = list(DataLoader(ds, batch_size=4, drop_last=True))
        assert len(batches) == 2
        assert all(len(b[0]) == 4 for b in batches)

    def test_shuffle_changes_order_but_not_content(self):
        ds = ArrayDataset(np.arange(100))
        loader = DataLoader(ds, batch_size=100, shuffle=True, rng=np.random.default_rng(0))
        (first,) = next(iter(loader))
        assert not np.array_equal(first, np.arange(100))
        np.testing.assert_array_equal(np.sort(first), np.arange(100))

    def test_shuffle_reproducible_by_rng(self):
        ds = ArrayDataset(np.arange(50))
        a = next(iter(DataLoader(ds, 50, shuffle=True, rng=np.random.default_rng(7))))[0]
        b = next(iter(DataLoader(ds, 50, shuffle=True, rng=np.random.default_rng(7))))[0]
        np.testing.assert_array_equal(a, b)

    def test_epochs_differ_with_shared_rng(self):
        ds = ArrayDataset(np.arange(50))
        loader = DataLoader(ds, 50, shuffle=True, rng=np.random.default_rng(7))
        first = next(iter(loader))[0].copy()
        second = next(iter(loader))[0].copy()
        assert not np.array_equal(first, second)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(5)), batch_size=0)

    def test_multiple_arrays_stay_aligned(self):
        x = np.arange(20)
        y = x * 10
        loader = DataLoader(ArrayDataset(x, y), 7, shuffle=True, rng=np.random.default_rng(1))
        for bx, by in loader:
            np.testing.assert_array_equal(by, bx * 10)
