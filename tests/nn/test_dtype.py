"""Tests for the global dtype policy (float32 default, float64 opt-in).

The ambient ``tests/nn`` fixture pins float64; every test here opens
its own ``default_dtype`` context, so the policy under test is always
explicit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.dtype import default_dtype, get_default_dtype, set_default_dtype


class TestPolicyPlumbing:
    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(previous)

    def test_rejects_non_float_dtypes(self):
        for bad in ("int64", "float16", "complex128"):
            with pytest.raises(ValueError, match="float32 or float64"):
                set_default_dtype(bad)

    def test_context_restores_on_exit(self):
        before = get_default_dtype()
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == before

    def test_context_restores_on_error(self):
        before = get_default_dtype()
        with pytest.raises(RuntimeError):
            with default_dtype("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == before

    def test_none_context_is_noop(self):
        before = get_default_dtype()
        with default_dtype(None) as active:
            assert active == before
            assert get_default_dtype() == before

    def test_contexts_nest(self):
        with default_dtype("float32"):
            with default_dtype("float64"):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32


class TestTensorCreation:
    def test_lists_and_scalars_take_default(self):
        with default_dtype("float32"):
            assert nn.Tensor([1.0, 2.0]).dtype == np.float32
            assert nn.Tensor(3.5).dtype == np.float32
        with default_dtype("float64"):
            assert nn.Tensor([1.0, 2.0]).dtype == np.float64

    def test_floating_ndarray_dtype_preserved(self):
        """detach()/checkpoint arrays never change precision silently."""
        with default_dtype("float32"):
            assert nn.Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64
            assert nn.Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        with default_dtype("float64"):
            assert nn.Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32

    def test_integer_and_bool_arrays_promoted(self):
        with default_dtype("float32"):
            assert nn.Tensor(np.arange(3)).dtype == np.float32
            assert nn.Tensor(np.array([True, False])).dtype == np.float32

    def test_explicit_dtype_wins(self):
        with default_dtype("float32"):
            assert nn.Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_python_scalar_ops_do_not_upcast(self):
        with default_dtype("float32"):
            t = nn.Tensor([1.0, 2.0])
            assert (t * 2.0).dtype == np.float32
            assert (t + 1.0).dtype == np.float32
            assert (t / 3.0).dtype == np.float32

    def test_astype_is_differentiable(self):
        with default_dtype("float64"):
            x = nn.Tensor([1.0, 2.0, 3.0], requires_grad=True)
            y = x.astype(np.float32)
            assert y.dtype == np.float32
            (y * y).sum().backward()
            assert x.grad.dtype == np.float64
            np.testing.assert_allclose(x.grad, 2.0 * x.data)

    def test_astype_same_dtype_is_identity(self):
        x = nn.Tensor([1.0], requires_grad=True)
        assert x.astype(x.dtype) is x


class TestInitAndModules:
    def test_init_materialises_in_default_dtype(self):
        rng32, rng64 = np.random.default_rng(0), np.random.default_rng(0)
        with default_dtype("float32"):
            w32 = nn.init.xavier_uniform((4, 3), rng32)
        with default_dtype("float64"):
            w64 = nn.init.xavier_uniform((4, 3), rng64)
        assert w32.dtype == np.float32
        assert w64.dtype == np.float64
        # Same seed -> same weights up to float32 rounding: draws
        # happen in float64 and are cast, so the policy never changes
        # which random stream a model consumes.
        np.testing.assert_allclose(w32, w64, rtol=1e-6)

    def test_module_dtype_property(self):
        with default_dtype("float32"):
            layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        assert layer.dtype == np.float32
        assert nn.Module().dtype == get_default_dtype()

    def test_layer_forward_stays_float32(self):
        with default_dtype("float32"):
            layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
            out = layer(nn.Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.dtype == np.float32

    def test_optimizer_state_matches_param_dtype(self):
        with default_dtype("float32"):
            param = nn.Parameter(np.ones(3, dtype=np.float32))
            optimizer = nn.AdamW([param], lr=1e-2)
            param.grad = np.ones(3, dtype=np.float32)
            optimizer.step()
        assert param.data.dtype == np.float32
        assert optimizer._m[0].dtype == np.float32
        assert optimizer._v[0].dtype == np.float32


class TestModelBoundary:
    def test_config_dtype_overrides_global_default(self):
        from repro.models import MomentModel
        from repro.models.config import get_config

        with default_dtype("float32"):
            model = MomentModel("moment-tiny")
            wide = MomentModel(get_config("moment-tiny", dtype="float64"))
        assert model.dtype == np.float32
        assert wide.dtype == np.float64

    def test_encode_casts_input_at_boundary(self):
        from repro.models import MomentModel

        with default_dtype("float32"):
            model = MomentModel("moment-tiny")
        out = model.encode(np.random.default_rng(0).normal(size=(2, 32, 3)))
        assert out.dtype == np.float32

    def test_config_rejects_unknown_dtype(self):
        from repro.models.config import get_config

        with pytest.raises(ValueError, match="dtype"):
            get_config("moment-tiny", dtype="float16")
