"""End-to-end learning tests for the nn framework.

Each test trains a small architecture on a synthetic task it should be
able to solve; these catch subtle autodiff bugs that per-op gradient
checks miss (wrong accumulation across steps, optimizer state issues,
dropout/eval interactions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


def train(model, x, y, steps=150, lr=1e-2):
    optimizer = nn.Adam(model.trainable_parameters(), lr=lr)
    losses = []
    for _ in range(steps):
        loss = F.cross_entropy(model(nn.Tensor(x)), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    return losses


def accuracy(model, x, y):
    with nn.no_grad():
        return float((model(nn.Tensor(x)).data.argmax(axis=1) == y).mean())


class TestMlp:
    def test_learns_xor(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        x = np.tile(x, (25, 1)) + 0.05 * np.random.default_rng(0).normal(size=(100, 2))
        y = (np.round(x[:, 0]) != np.round(x[:, 1])).astype(np.int64)
        rng = np.random.default_rng(1)
        model = nn.Sequential(nn.Linear(2, 16, rng=rng), nn.GELU(), nn.Linear(16, 2, rng=rng))
        losses = train(model, x, y, steps=300, lr=3e-2)
        assert losses[-1] < 0.1
        assert accuracy(model, x, y) > 0.95


class TestConvClassifier:
    def test_learns_frequency_discrimination(self):
        """Conv1d front end distinguishing low- vs high-frequency waves."""
        rng = np.random.default_rng(0)
        n, length = 120, 64
        t = np.linspace(0, 1, length)
        y = (np.arange(n) % 2).astype(np.int64)
        freqs = np.where(y == 0, 2.0, 9.0)
        x = np.sin(2 * np.pi * freqs[:, None] * t[None, :] + rng.uniform(0, 2 * np.pi, (n, 1)))
        x = x[:, None, :] + 0.1 * rng.normal(size=(n, 1, length))

        init_rng = np.random.default_rng(1)

        class ConvNet(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv1d(1, 8, kernel_size=7, stride=2, rng=init_rng)
                self.head = nn.Linear(8, 2, rng=init_rng)

            def forward(self, x):
                hidden = F.relu(self.conv(x))
                pooled = hidden.mean(axis=2)
                return self.head(pooled)

        model = ConvNet()
        train(model, x, y, steps=150, lr=1e-2)
        assert accuracy(model, x, y) > 0.9


class TestAttentionClassifier:
    def test_learns_token_position_task(self):
        """A transformer must find which position carries the marker."""
        rng = np.random.default_rng(0)
        n, tokens, dim = 90, 6, 8
        x = rng.normal(size=(n, tokens, dim)) * 0.1
        y = rng.integers(0, 3, size=n)
        marker = np.zeros(dim)
        marker[0] = 3.0
        for i in range(n):
            x[i, y[i]] += marker  # class = marked position (0..2)

        init_rng = np.random.default_rng(1)

        class TinyTransformer(nn.Module):
            def __init__(self):
                super().__init__()
                self.pos = nn.Parameter(nn.init.normal((tokens, dim), init_rng, std=0.5))
                self.encoder = nn.TransformerEncoder(dim, 2, 16, 1, rng=init_rng)
                self.head = nn.Linear(dim, 3, rng=init_rng)

            def forward(self, x):
                hidden = self.encoder(x + self.pos.reshape(1, tokens, dim))
                return self.head(hidden.mean(axis=1))

        model = TinyTransformer()
        train(model, x, y.astype(np.int64), steps=250, lr=1e-2)
        assert accuracy(model, x, y) > 0.85


class TestRegularisation:
    def test_dropout_changes_training_but_not_eval(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 32, rng=rng), nn.Dropout(0.5, rng=rng), nn.Linear(32, 2, rng=rng)
        )
        x = nn.Tensor(rng.normal(size=(8, 4)))
        model.train()
        assert not np.array_equal(model(x).data, model(x).data)
        model.eval()
        np.testing.assert_array_equal(model(x).data, model(x).data)

    def test_weight_decay_shrinks_weights(self, rng):
        x = rng.normal(size=(50, 4))
        y = np.zeros(50, dtype=np.int64)
        heavy = nn.Linear(4, 2, rng=np.random.default_rng(0))
        light = nn.Linear(4, 2, rng=np.random.default_rng(0))
        for model, decay in ((heavy, 0.0), (light, 0.5)):
            optimizer = nn.AdamW(model.trainable_parameters(), lr=1e-2, weight_decay=decay)
            for _ in range(100):
                loss = F.cross_entropy(model(nn.Tensor(x)), y)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        assert np.abs(light.weight.data).sum() < np.abs(heavy.weight.data).sum()
