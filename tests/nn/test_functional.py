"""Tests for functional ops: values, gradients, numerical stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import assert_grad_matches


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        assert_grad_matches(lambda: (F.relu(a) ** 2).sum(), a)

    def test_gelu_known_values(self):
        out = F.gelu(Tensor([0.0]))
        assert out.data[0] == pytest.approx(0.0)
        # gelu(x) -> x for large positive x
        assert F.gelu(Tensor([10.0])).data[0] == pytest.approx(10.0, abs=1e-4)
        # gelu(x) -> 0 for large negative x
        assert F.gelu(Tensor([-10.0])).data[0] == pytest.approx(0.0, abs=1e-4)

    def test_gelu_grad(self):
        a = Tensor([-2.0, -0.5, 0.3, 1.7], requires_grad=True)
        assert_grad_matches(lambda: F.gelu(a).sum(), a)

    def test_sigmoid_values_and_stability(self):
        out = F.sigmoid(Tensor([0.0, 100.0, -100.0]))
        np.testing.assert_allclose(out.data, [0.5, 1.0, 0.0], atol=1e-12)

    def test_sigmoid_grad(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        assert_grad_matches(lambda: F.sigmoid(a).sum(), a)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_stable_under_large_inputs(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_softmax_grad(self):
        a = Tensor(np.random.default_rng(1).normal(size=(3, 5)), requires_grad=True)
        weights = np.random.default_rng(2).normal(size=(3, 5))
        assert_grad_matches(lambda: (F.softmax(a) * Tensor(weights)).sum(), a)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_log_softmax_grad(self):
        a = Tensor(np.random.default_rng(4).normal(size=(3, 4)), requires_grad=True)
        weights = np.random.default_rng(5).normal(size=(3, 4))
        assert_grad_matches(lambda: (F.log_softmax(a) * Tensor(weights)).sum(), a)


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out.data, x.data)

    def test_identity_with_p_zero(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out.data, x.data)

    def test_expected_scale_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=np.random.default_rng(0))

    def test_grad_matches_mask(self):
        rng_state = np.random.default_rng(7)
        x = Tensor(np.ones(50), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng_state)
        out.sum().backward()
        # gradient equals the mask scaling exactly
        np.testing.assert_array_equal(x.grad, out.data)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(5, 16)))
        weight, bias = Tensor(np.ones(16)), Tensor(np.zeros(16))
        out = F.layer_norm(x, weight, bias)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(5), atol=1e-3)

    def test_affine_applied(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        weight, bias = Tensor(np.full(4, 2.0)), Tensor(np.full(4, 1.0))
        out = F.layer_norm(x, weight, bias)
        base = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.data, 2.0 * base.data + 1.0, atol=1e-12)

    def test_grad(self):
        a = Tensor(np.random.default_rng(2).normal(size=(2, 6)), requires_grad=True)
        w = Tensor(np.random.default_rng(3).normal(size=6), requires_grad=True)
        b = Tensor(np.zeros(6), requires_grad=True)
        target = np.random.default_rng(4).normal(size=(2, 6))
        assert_grad_matches(lambda: ((F.layer_norm(a, w, b) - Tensor(target)) ** 2).sum(), a)
        assert_grad_matches(lambda: ((F.layer_norm(a, w, b) - Tensor(target)) ** 2).sum(), w)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        targets = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), targets)
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(2), targets]).mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_grad(self):
        a = Tensor(np.random.default_rng(5).normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        assert_grad_matches(lambda: F.cross_entropy(a, targets), a)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3))

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-12)

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 4.0]))
        assert float(loss.data) == pytest.approx((1 + 4) / 2)

    def test_masked_mse_only_counts_mask(self):
        pred = Tensor([[1.0, 5.0]])
        target = np.array([[0.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        loss = F.masked_mse_loss(pred, target, mask)
        assert float(loss.data) == pytest.approx(1.0)

    def test_masked_mse_all_zero_mask_raises(self):
        with pytest.raises(ValueError):
            F.masked_mse_loss(Tensor([[1.0]]), np.array([[0.0]]), np.array([[0.0]]))

    def test_info_nce_prefers_aligned_pairs(self):
        rng = np.random.default_rng(6)
        emb = rng.normal(size=(8, 16))
        aligned = F.info_nce_loss(Tensor(emb), Tensor(emb + 0.01 * rng.normal(size=emb.shape)))
        shuffled = F.info_nce_loss(Tensor(emb), Tensor(emb[::-1].copy()))
        assert float(aligned.data) < float(shuffled.data)

    def test_info_nce_shape_validation(self):
        with pytest.raises(ValueError):
            F.info_nce_loss(Tensor(np.zeros((4, 8))), Tensor(np.zeros((5, 8))))

    def test_info_nce_grad(self):
        rng = np.random.default_rng(7)
        q = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        k = Tensor(rng.normal(size=(4, 6)))
        assert_grad_matches(lambda: F.info_nce_loss(q, k), q, atol=1e-4, rtol=1e-3)
