"""Gradient and equivalence checks for the fused/allocation-light ops.

The fused ``layer_norm`` backward, the broadcasting attention-mask
bias and the one-buffer dropout mask all replaced composite
implementations; these tests pin them to finite differences and to
naive reference forms so the optimisations cannot drift numerically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import assert_grad_matches


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def reference_layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5):
    """The pre-fusion composite form, kept as a differentiable oracle."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    x_hat = centered / (variance + eps).sqrt()
    return x_hat * weight + bias


class TestFusedLayerNorm:
    def test_forward_matches_reference(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        weight = Tensor(rng.normal(size=6))
        bias = Tensor(rng.normal(size=6))
        fused = F.layer_norm(x, weight, bias)
        reference = reference_layer_norm(x, weight, bias)
        np.testing.assert_allclose(fused.data, reference.data, atol=1e-12)

    def test_backward_matches_reference(self, rng):
        data = rng.normal(size=(3, 5))
        w_data = rng.normal(size=5)
        b_data = rng.normal(size=5)
        grads = {}
        for form in (F.layer_norm, reference_layer_norm):
            x = Tensor(data.copy(), requires_grad=True)
            weight = Tensor(w_data.copy(), requires_grad=True)
            bias = Tensor(b_data.copy(), requires_grad=True)
            (form(x, weight, bias) * Tensor(np.arange(15.0).reshape(3, 5))).sum().backward()
            grads[form] = (x.grad, weight.grad, bias.grad)
        for fused_grad, ref_grad in zip(grads[F.layer_norm], grads[reference_layer_norm]):
            np.testing.assert_allclose(fused_grad, ref_grad, atol=1e-10)

    def test_gradcheck_x(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        weight = Tensor(rng.normal(size=4))
        bias = Tensor(rng.normal(size=4))
        assert_grad_matches(lambda: F.layer_norm(x, weight, bias).sum(), x)

    def test_gradcheck_weight_and_bias(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        weight = Tensor(rng.normal(size=4), requires_grad=True)
        bias = Tensor(rng.normal(size=4), requires_grad=True)
        assert_grad_matches(lambda: (F.layer_norm(x, weight, bias) ** 2).sum(), weight)
        assert_grad_matches(lambda: (F.layer_norm(x, weight, bias) ** 2).sum(), bias)

    def test_gradcheck_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        weight = Tensor(rng.normal(size=4), requires_grad=True)
        bias = Tensor(rng.normal(size=4))
        assert_grad_matches(lambda: (F.layer_norm(x, weight, bias) ** 3).sum(), x)
        assert_grad_matches(lambda: (F.layer_norm(x, weight, bias) ** 3).sum(), weight)

    def test_single_graph_node(self, rng):
        """The op must stay fused: exactly one node between x and out."""
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        out = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        assert out._parents is not None
        assert x in out._parents

    def test_frozen_inputs_skip_grad_work(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        weight = Tensor(np.ones(4))  # frozen
        bias = Tensor(np.zeros(4))  # frozen
        F.layer_norm(x, weight, bias).sum().backward()
        assert x.grad is not None
        assert weight.grad is None and bias.grad is None


class TestBroadcastedMatmul:
    def test_vector_matrix_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        assert_grad_matches(lambda: (a @ b).sum(), a)
        assert_grad_matches(lambda: (a @ b).sum(), b)

    def test_batched_matmul_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_broadcast_batch_dims_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
        assert_grad_matches(lambda: (a @ b).sum(), a)
        assert_grad_matches(lambda: (a @ b).sum(), b)


class TestDropoutDtype:
    def test_mask_stays_in_activation_dtype(self, rng):
        with nn.default_dtype("float32"):
            x = Tensor(rng.normal(size=(8, 8)).astype(np.float32), requires_grad=True)
            out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
            assert out.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32

    def test_float64_path_unchanged(self, rng):
        x = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
        assert out.dtype == np.float64
        kept = out.data != 0
        np.testing.assert_allclose(out.data[kept], x.data[kept] * 2.0)


class TestAttentionMaskBias:
    def test_all_true_mask_matches_no_mask(self, rng):
        attn = nn.MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 8)))
        mask = np.ones((2, 5, 5), dtype=bool)
        np.testing.assert_allclose(attn(x).data, attn(x, attn_mask=mask).data, atol=1e-12)

    def test_masked_keys_get_no_weight(self, rng):
        """Keys masked out everywhere cannot influence any output row."""
        attn = nn.MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        poisoned = x.copy()
        poisoned[0, -1] = 1e3  # wildly different masked-out key
        mask = np.ones((1, 4, 4), dtype=bool)
        mask[:, :3, 3] = False  # rows 0-2 may not attend to key 3
        a = attn(Tensor(x), attn_mask=mask).data
        b = attn(Tensor(poisoned), attn_mask=mask).data
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-9)

    def test_masked_attention_stays_float32(self, rng):
        with nn.default_dtype("float32"):
            attn = nn.MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
            x = Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32))
            mask = np.tril(np.ones((1, 4, 4), dtype=bool))
            assert attn(x, attn_mask=mask).dtype == np.float32

    def test_masked_attention_gradcheck(self, rng):
        attn = nn.MultiHeadSelfAttention(d_model=4, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        mask = np.tril(np.ones((1, 3, 3), dtype=bool))
        assert_grad_matches(lambda: (attn(x, attn_mask=mask) ** 2).sum(), x)


class TestItemError:
    def test_multi_element_item_names_shape(self):
        with pytest.raises(ValueError, match=r"\(2, 3\)"):
            Tensor(np.zeros((2, 3))).item()

    def test_single_element_item_ok(self):
        assert Tensor([[4.0]]).item() == 4.0
