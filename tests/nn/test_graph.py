"""Capture / compile / replay engine tests (:mod:`repro.nn.graph`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import graph
from repro.nn import functional as F
from repro.nn import profiler as nn_profiler
from repro.nn.tensor import Tensor


def _mlp_like(t: Tensor) -> Tensor:
    w = Tensor(np.linspace(-0.5, 0.5, 12).reshape(4, 3).astype(t.data.dtype))
    return F.relu(t @ w) + 1.0


def _inputs(shape=(5, 4), dtype=np.float32, seed=0):
    return [np.random.default_rng(seed).standard_normal(shape).astype(dtype)]


class TestCapture:
    def test_capture_records_ops_in_order(self):
        trace = graph.capture(_mlp_like, _inputs())
        assert [s.op for s in trace.steps] == ["matmul", "relu", "add"]
        assert trace.inputs == [0]
        assert trace.output == trace.steps[-1].out

    def test_capture_rejects_nested_capture(self):
        def nested(t):
            graph.capture(_mlp_like, _inputs())
            return t + 1.0

        with pytest.raises(graph.TraceError, match="already active"):
            graph.capture(nested, _inputs())

    def test_capture_rejects_untraced_output(self):
        with pytest.raises(graph.TraceError, match="no traced ops"):
            graph.capture(lambda t: t, _inputs())

    def test_render_lists_steps(self):
        trace = graph.capture(_mlp_like, _inputs())
        listing = trace.render()
        assert "matmul" in listing and "relu" in listing

    def test_mid_capture_constants_are_baked_by_copy(self):
        leak = np.ones(4, dtype=np.float32)

        def fn(t):
            return t + Tensor(leak)

        trace = graph.capture(fn, _inputs((3, 4)))
        compiled = graph.compile_trace(trace)
        first = compiled.run(_inputs((3, 4)))
        leak[:] = 99.0  # mutating the source must not change the program
        second = compiled.run(_inputs((3, 4)))
        np.testing.assert_array_equal(first, second)

    def test_params_are_held_by_reference(self):
        weight = Tensor(np.full((4, 3), 2.0, dtype=np.float32))

        def fn(t):
            return t @ weight

        trace = graph.capture(fn, _inputs())
        compiled = graph.compile_trace(trace)
        x = _inputs()
        first = compiled.run(x)
        weight.data *= 2.0  # in-place update, as an optimizer would do
        second = compiled.run(x)
        np.testing.assert_array_equal(second, 2.0 * first)


class TestCompile:
    def test_dead_step_elimination(self):
        def fn(t):
            _dead = (t * 3.0).exp()  # never reaches the output
            return t + 1.0

        trace = graph.capture(fn, _inputs())
        compiled = graph.compile_trace(trace)
        assert compiled.dead_steps == 2
        assert [s.op for s in compiled.steps] == ["add"]

    def test_arena_reuses_blocks_across_lifetimes(self):
        def chain(t):
            return (((t + 1.0) * 2.0) - 3.0) / 4.0

        compiled = graph.compile_trace(graph.capture(chain, _inputs()))
        # Four same-sized intermediates with disjoint lifetimes need
        # far fewer blocks than steps (output storage is never arena).
        assert len(compiled.plan.blocks) < len(compiled.steps)
        assert compiled.arena_bytes < compiled.eager_bytes

    def test_views_share_storage_with_parent(self):
        def fn(t):
            return (t.reshape(2, 10).transpose(1, 0) * 2.0).sum(axis=0)

        trace = graph.capture(fn, _inputs((4, 5)))
        views = [s for s in trace.steps if s.alias_of is not None]
        assert {s.op for s in views} == {"reshape", "transpose"}
        compiled = graph.compile_trace(trace)
        for step in views:
            assert step.out not in compiled.plan.buffers

    def test_replay_matches_eager_bitwise(self):
        x = _inputs((6, 4), np.float64)
        compiled = graph.compile_trace(graph.capture(_mlp_like, x))
        with nn.no_grad():
            eager = _mlp_like(Tensor(x[0])).data
        for _ in range(3):  # repeated replays reuse the same arena
            np.testing.assert_array_equal(compiled.run(x), eager)

    def test_permuted_layouts_replay_bitwise(self):
        # Reductions over axis-permuted ufunc outputs follow memory
        # order; the arena must reproduce eager strides exactly.
        def fn(t):
            moved = t.transpose(1, 0, 2) * 1.7
            return (moved - moved.mean(axis=-1, keepdims=True)).sum(axis=-1)

        x = _inputs((7, 5, 16), np.float32)
        compiled = graph.compile_trace(graph.capture(fn, x))
        with nn.no_grad():
            eager = fn(Tensor(x[0])).data
        np.testing.assert_array_equal(compiled.run(x), eager)


class TestReplayGuard:
    def test_shape_mismatch_raises_guard(self):
        compiled = graph.compile_trace(graph.capture(_mlp_like, _inputs()))
        with pytest.raises(graph.ReplayGuard, match="signature"):
            compiled.run(_inputs((7, 4)))

    def test_dtype_mismatch_raises_guard(self):
        compiled = graph.compile_trace(graph.capture(_mlp_like, _inputs()))
        with pytest.raises(graph.ReplayGuard, match="signature"):
            compiled.run(_inputs(dtype=np.float64))

    def test_param_drift_raises_guard(self):
        weight = Tensor(np.ones((4, 3), dtype=np.float32))
        compiled = graph.compile_trace(graph.capture(lambda t: t @ weight, _inputs()))
        weight.data = np.ones((4, 7), dtype=np.float32)
        with pytest.raises(graph.ReplayGuard, match="parameter"):
            compiled.run(_inputs())

    def test_result_never_aliases_the_arena(self):
        compiled = graph.compile_trace(graph.capture(_mlp_like, _inputs()))
        first = compiled.run(_inputs(seed=1))
        snapshot = first.copy()
        compiled.run(_inputs(seed=2))
        np.testing.assert_array_equal(first, snapshot)


class TestGraphCache:
    def test_cache_compiles_once_per_bucket(self):
        cache = graph.GraphCache()
        for seed in range(3):
            out = cache.run(_mlp_like, _inputs(seed=seed)[0])
            assert out is not None
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 2
        assert len(cache) == 1

    def test_cache_separates_shape_buckets(self):
        cache = graph.GraphCache()
        assert cache.run(_mlp_like, _inputs((5, 4))[0]) is not None
        assert cache.run(_mlp_like, _inputs((9, 4))[0]) is not None
        assert len(cache) == 2

    def test_disable_compilation(self):
        cache = graph.GraphCache()
        with graph.compile_disabled():
            assert not graph.compile_enabled()
            assert cache.run(_mlp_like, _inputs()[0]) is None
        assert graph.compile_enabled()
        assert cache.run(_mlp_like, _inputs()[0]) is not None

    def test_uncapturable_function_falls_back(self):
        rng = np.random.default_rng(0)
        cache = graph.GraphCache()

        def noisy(t):
            return F.dropout(t * 2.0, 0.5, True, rng)

        assert cache.run(noisy, _inputs()[0]) is None
        assert cache.stats()["fallbacks"] == 1

    def test_eviction_keeps_cache_bounded(self):
        cache = graph.GraphCache(max_entries=2)
        for n in (2, 3, 4, 5):
            cache.run(_mlp_like, _inputs((n, 4))[0])
        assert len(cache) == 2


class TestProfilerIntegration:
    def test_replay_stats_recorded(self):
        compiled = graph.compile_trace(graph.capture(_mlp_like, _inputs()))
        with nn_profiler.profile() as prof:
            compiled.run(_inputs())
            compiled.run(_inputs())
        replay = prof.replay_summary()
        assert replay["runs"] == 2
        assert set(replay["ops"]) == {"matmul", "relu", "add"}
        assert replay["bytes_saved"] > 0
        rendered = nn_profiler.render_replay_ops(replay)
        assert "graph replays: 2" in rendered

    def test_eager_path_records_no_replays(self):
        with nn_profiler.profile() as prof:
            with nn.no_grad():
                _mlp_like(Tensor(_inputs()[0]))
        assert prof.replay_summary()["runs"] == 0
