"""Tests for weight initialisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_uniform_bound(self, rng):
        weights = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(weights).max() <= bound
        assert weights.shape == (100, 50)

    def test_normal_std(self, rng):
        weights = init.xavier_normal((200, 100), rng)
        expected = np.sqrt(2.0 / 300)
        assert weights.std() == pytest.approx(expected, rel=0.1)

    def test_gain_scales(self, rng):
        base = init.xavier_uniform((50, 50), np.random.default_rng(0))
        gained = init.xavier_uniform((50, 50), np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(gained, 2.0 * base)

    def test_conv_shape_fan(self, rng):
        """3D shapes use receptive-field-aware fan computation."""
        weights = init.kaiming_uniform((8, 4, 3), rng)  # fan_in = 4*3
        bound = np.sqrt(6.0 / 12)
        assert np.abs(weights).max() <= bound

    def test_rejects_1d_shape(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform((5,), rng)


class TestOthers:
    def test_normal_default_std(self, rng):
        weights = init.normal((500, 20), rng)
        assert weights.std() == pytest.approx(0.02, rel=0.1)

    def test_zeros_ones(self):
        np.testing.assert_array_equal(init.zeros((2, 3)), np.zeros((2, 3)))
        np.testing.assert_array_equal(init.ones((4,)), np.ones(4))

    def test_deterministic_by_rng(self):
        a = init.kaiming_uniform((4, 4), np.random.default_rng(7))
        b = init.kaiming_uniform((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
