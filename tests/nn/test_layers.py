"""Tests for the neural-network layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLinear:
    def test_values_match_manual(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data.T + layer.bias.data, atol=1e-12
        )

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_trailing_dim_broadcast(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 3)

    def test_deterministic_init_by_rng(self):
        a = nn.Linear(4, 3, rng=np.random.default_rng(1))
        b = nn.Linear(4, 3, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_xavier_scale(self):
        layer = nn.Linear(100, 100, rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound + 1e-12

    def test_repr(self, rng):
        assert "Linear(4, 3" in repr(nn.Linear(4, 3, rng=rng))


class TestLayerNorm:
    def test_output_normalized(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(rng.normal(3.0, 2.0, size=(4, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)

    def test_parameters(self):
        layer = nn.LayerNorm(8)
        assert {name for name, _ in layer.named_parameters()} == {"weight", "bias"}


class TestDropout:
    def test_eval_identity(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_train_zeroes_fraction(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        zero_fraction = (out.data == 0).mean()
        assert zero_fraction == pytest.approx(0.5, abs=0.05)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 3, 1]))
        np.testing.assert_array_equal(out.data[0], emb.weight.data[1])
        np.testing.assert_array_equal(out.data[1], emb.weight.data[3])
        np.testing.assert_array_equal(out.data[0], out.data[2])

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = nn.Embedding(5, 3, rng=rng)
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2.0 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[4], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestConv1d:
    def test_matches_manual_correlation(self, rng):
        conv = nn.Conv1d(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 8))
        out = conv(Tensor(x)).data
        assert out.shape == (1, 3, 6)
        # Manual cross-correlation for one output position/channel.
        expected = (
            (x[0, :, 2:5] * conv.weight.data[1]).sum() + conv.bias.data[1]
        )
        assert out[0, 1, 2] == pytest.approx(expected)

    def test_stride(self, rng):
        conv = nn.Conv1d(1, 1, kernel_size=2, stride=2, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 1, 10))))
        assert out.shape == (2, 1, 5)

    def test_padding(self, rng):
        conv = nn.Conv1d(1, 1, kernel_size=3, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 1, 10))))
        assert out.shape == (2, 1, 10)

    def test_channel_mismatch_raises(self, rng):
        conv = nn.Conv1d(2, 3, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 4, 8))))

    def test_too_short_input_raises(self, rng):
        conv = nn.Conv1d(1, 1, kernel_size=5, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 1, 3))))

    def test_gradients_flow(self, rng):
        conv = nn.Conv1d(2, 2, kernel_size=3, rng=rng)
        x = Tensor(rng.normal(size=(2, 2, 9)), requires_grad=True)
        (conv(x) ** 2).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None


class TestActivationModules:
    def test_gelu_module(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(
            nn.GELU()(Tensor(x)).data, nn.functional.gelu(Tensor(x)).data
        )

    def test_relu_module(self):
        out = nn.ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])
