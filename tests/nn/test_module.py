"""Tests for Module: parameter discovery, freezing, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter, Sequential


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.bias = Parameter(np.zeros(2))

    def forward(self, x):
        return x


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Leaf()
        self.blocks = [Leaf(), Leaf()]
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return x


class TestDiscovery:
    def test_named_parameters_dotted_paths(self):
        names = {name for name, _ in Nested().named_parameters()}
        assert names == {
            "inner.weight",
            "inner.bias",
            "blocks.0.weight",
            "blocks.0.bias",
            "blocks.1.weight",
            "blocks.1.bias",
            "scale",
        }

    def test_parameters_count(self):
        module = Nested()
        assert len(module.parameters()) == 7
        assert module.num_parameters() == 3 * (6 + 2) + 1

    def test_modules_iterates_descendants(self):
        module = Nested()
        kinds = [type(m).__name__ for m in module.modules()]
        assert kinds.count("Leaf") == 3
        assert kinds[0] == "Nested"

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.ones(3))
        assert isinstance(p, nn.Tensor)
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagates(self):
        module = Nested()
        module.eval()
        assert all(not m.training for m in module.modules())
        module.train()
        assert all(m.training for m in module.modules())

    def test_freeze_unfreeze(self):
        module = Nested()
        module.freeze()
        assert module.trainable_parameters() == []
        assert module.num_parameters(trainable_only=True) == 0
        module.unfreeze()
        assert len(module.trainable_parameters()) == 7

    def test_zero_grad_clears(self):
        module = Leaf()
        module.weight.grad = np.ones((2, 3))
        module.zero_grad()
        assert module.weight.grad is None


class TestStateDict:
    def test_round_trip(self):
        src, dst = Nested(), Nested()
        for param in src.parameters():
            param.data += np.random.default_rng(0).normal(size=param.data.shape)
        dst.load_state_dict(src.state_dict())
        for (name_a, a), (name_b, b) in zip(src.named_parameters(), dst.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_copies(self):
        module = Leaf()
        state = module.state_dict()
        state["weight"][:] = 99.0
        assert not (module.weight.data == 99.0).any()

    def test_missing_key_raises(self):
        module = Leaf()
        state = module.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        module = Leaf()
        state = module.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            module.load_state_dict(state)


class TestSequential:
    def test_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        out = seq(nn.Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_len_and_indexing(self):
        seq = Sequential(nn.ReLU(), nn.GELU())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.GELU)

    def test_collects_layer_parameters(self):
        rng = np.random.default_rng(0)
        seq = Sequential(nn.Linear(4, 8, rng=rng), nn.Linear(8, 2, rng=rng))
        assert len(seq.parameters()) == 4

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
