"""Numerical-stability tests: extreme inputs must not produce NaN/inf.

Foundation-model fine-tuning feeds the framework un-normalised
projections (PCA components carry sqrt(eigenvalue) amplitudes), so the
numerics must survive large and tiny magnitudes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmaxFamily:
    @pytest.mark.parametrize("scale", [1e3, 1e6])
    def test_softmax_extreme_logits(self, scale, rng):
        x = Tensor(scale * rng.normal(size=(4, 6)))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    @pytest.mark.parametrize("scale", [1e3, 1e6])
    def test_log_softmax_extreme_logits(self, scale, rng):
        out = F.log_softmax(Tensor(scale * rng.normal(size=(4, 6)))).data
        assert np.isfinite(out).all()
        assert (out <= 1e-9).all()

    def test_cross_entropy_confident_wrong_prediction(self):
        logits = Tensor(np.array([[1e4, -1e4]]), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([1]))
        assert np.isfinite(loss.data)
        loss.backward()
        assert np.isfinite(logits.grad).all()


class TestNormalisation:
    def test_layer_norm_tiny_variance(self):
        x = Tensor(np.full((2, 8), 3.0) + 1e-12 * np.arange(16).reshape(2, 8))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        assert np.isfinite(out.data).all()

    def test_layer_norm_large_values(self, rng):
        x = Tensor(1e8 * rng.normal(size=(3, 8)), requires_grad=True)
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        out.sum().backward()
        assert np.isfinite(out.data).all()
        assert np.isfinite(x.grad).all()


class TestOptimizers:
    def test_adam_with_zero_gradients(self):
        p = nn.Parameter(np.ones(3))
        opt = nn.Adam([p], lr=1e-2)
        p.grad = np.zeros(3)
        for _ in range(5):
            opt.step()
        assert np.isfinite(p.data).all()
        np.testing.assert_allclose(p.data, np.ones(3))

    def test_adam_with_huge_gradients(self):
        p = nn.Parameter(np.zeros(3))
        opt = nn.Adam([p], lr=1e-2)
        p.grad = np.full(3, 1e12)
        opt.step()
        assert np.isfinite(p.data).all()
        # Adam's normalisation bounds the step near lr
        assert np.abs(p.data).max() < 0.011

    def test_clip_grad_norm_handles_huge_norms(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 1e200)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert np.isfinite(norm)
        assert np.isfinite(p.grad).all()


class TestModelInputs:
    def test_moment_encode_extreme_amplitudes(self, rng):
        from repro.models import MomentModel

        model = MomentModel("moment-tiny", seed=0)
        model.eval()
        with nn.no_grad():
            tiny = model.encode(1e-9 * rng.normal(size=(2, 32, 2))).data
            huge = model.encode(1e9 * rng.normal(size=(2, 32, 2))).data
        assert np.isfinite(tiny).all()
        assert np.isfinite(huge).all()

    def test_pipeline_normalisation_tames_pca_amplitudes(self, rng):
        """The RevIN-style normalisation keeps encoder inputs O(1)
        regardless of the adapter's output scale."""
        from repro.adapters import make_adapter
        from repro.models import build_model
        from repro.training import AdapterPipeline, TrainConfig

        x = 1e4 * rng.normal(size=(20, 32, 8))
        y = (np.arange(20) % 2).astype(np.int64)
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipe = AdapterPipeline(model, make_adapter("pca", 3), 2, seed=0)
        pipe.fit(x, y, config=TrainConfig(epochs=2, batch_size=8, seed=0))
        logits = pipe.predict_logits(x)
        assert np.isfinite(logits).all()
