"""Tests for optimizers and schedules."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def make_param(values) -> Parameter:
    return Parameter(np.asarray(values, dtype=float))


class TestOptimizerBase:
    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([1.0])], lr=0.0)

    def test_skips_frozen_params(self):
        p = make_param([1.0])
        p.requires_grad = False
        opt = nn.SGD([p], lr=0.1)
        assert opt.params == []

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        nn.SGD([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([make_param([1.0])], lr=0.1, momentum=1.0)

    def test_none_grad_skipped(self):
        p = make_param([1.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_magnitude(self):
        """After one step, Adam moves by ~lr regardless of grad scale."""
        p = make_param([0.0])
        opt = nn.Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_matches_manual_two_steps(self):
        p = make_param([1.0])
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        opt = nn.Adam([p], lr=lr, betas=(b1, b2), eps=eps)
        m = v = 0.0
        x = 1.0
        for t in (1, 2):
            g = 2 * x  # grad of x^2
            p.grad = np.array([g])
            opt.step()
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g**2
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            x = x - lr * m_hat / (math.sqrt(v_hat) + eps)
            np.testing.assert_allclose(p.data, [x], atol=1e-12)

    def test_l2_weight_decay_in_grad(self):
        p = make_param([1.0])
        opt = nn.Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        # With zero grad, decay still moves toward zero via the gradient term.
        assert p.data[0] < 1.0


class TestAdamW:
    def test_decoupled_decay_applied(self):
        p = make_param([1.0])
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        # decay: 1 - 0.1*0.5 = 0.95, then Adam update with zero grad ~= 0.
        np.testing.assert_allclose(p.data, [0.95], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = nn.AdamW([p], lr=0.5, weight_decay=0.0)
        for _ in range(200):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-2


class TestClipGradNorm:
    def test_clips_when_exceeding(self):
        p = make_param([0.0, 0.0])
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_threshold(self):
        p = make_param([0.0])
        p.grad = np.array([0.5])
        nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.5])

    def test_ignores_none_grads(self):
        p = make_param([0.0])
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0


class TestSchedules:
    def test_cosine_decays_to_min(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineSchedule(opt, total_steps=10, min_lr=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_validates_steps(self):
        opt = nn.SGD([make_param([0.0])], lr=1.0)
        with pytest.raises(ValueError):
            nn.CosineSchedule(opt, total_steps=0)

    def test_warmup_rises_then_decays(self):
        opt = nn.SGD([make_param([0.0])], lr=1.0)
        sched = nn.WarmupCosineSchedule(opt, warmup_steps=5, total_steps=20)
        lrs = [sched.step() for _ in range(20)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[4] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)
        assert max(lrs) == pytest.approx(1.0)

    def test_warmup_validates(self):
        opt = nn.SGD([make_param([0.0])], lr=1.0)
        with pytest.raises(ValueError):
            nn.WarmupCosineSchedule(opt, warmup_steps=10, total_steps=10)

    def test_schedule_clamps_past_end(self):
        opt = nn.SGD([make_param([0.0])], lr=1.0)
        sched = nn.CosineSchedule(opt, total_steps=3, min_lr=0.0)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-12)
