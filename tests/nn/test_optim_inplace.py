"""Bit-for-bit equivalence of the in-place optimizers and grad clip.

The ``out=``-ufunc rewrites of SGD/Adam/AdamW promise *exact* (not
approximate) agreement with the textbook formulations they replaced:
the operation order is identical, only the temporaries are gone.
These tests run the pre-rewrite reference implementations side by side
and assert ``array_equal`` — any reordering of floating-point ops
would show up immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter


def _clone_params(rng, shapes, dtype):
    data = [rng.normal(size=shape).astype(dtype) for shape in shapes]
    a = [Parameter(d.copy()) for d in data]
    b = [Parameter(d.copy()) for d in data]
    return a, b


def _set_grads(rng, params_a, params_b, dtype):
    for pa, pb in zip(params_a, params_b):
        grad = rng.normal(size=pa.data.shape).astype(dtype)
        pa.grad = grad.copy()
        pb.grad = grad.copy()


# ---------------------------------------------------------------------------
# Reference implementations: verbatim pre-rewrite update rules.
# ---------------------------------------------------------------------------


class _RefSGD:
    def __init__(self, params, lr, momentum=0.0):
        self.params, self.lr, self.momentum = list(params), lr, momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class _RefAdam:
    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        self.params = list(params)
        self.lr, (self.beta1, self.beta2) = lr, betas
        self.eps, self.weight_decay = eps, weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _RefAdamW(_RefAdam):
    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.01):
        super().__init__(params, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self):
        if self.decoupled_weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.decoupled_weight_decay * param.data
        super().step()


SHAPES = [(7,), (3, 5), (2, 3, 4)]
STEPS = 5


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestBitForBit:
    def _run(self, dtype, make_fast, make_ref):
        rng = np.random.default_rng(11)
        fast_params, ref_params = _clone_params(rng, SHAPES, dtype)
        fast, ref = make_fast(fast_params), make_ref(ref_params)
        for _ in range(STEPS):
            _set_grads(rng, fast_params, ref_params, dtype)
            fast.step()
            ref.step()
            for pf, pr in zip(fast_params, ref_params):
                np.testing.assert_array_equal(pf.data, pr.data)
                assert pf.data.dtype == dtype

    def test_sgd_plain(self, dtype):
        self._run(dtype, lambda p: nn.SGD(p, lr=0.05), lambda p: _RefSGD(p, lr=0.05))

    def test_sgd_momentum(self, dtype):
        self._run(
            dtype,
            lambda p: nn.SGD(p, lr=0.05, momentum=0.9),
            lambda p: _RefSGD(p, lr=0.05, momentum=0.9),
        )

    def test_adam(self, dtype):
        self._run(dtype, lambda p: nn.Adam(p, lr=0.01), lambda p: _RefAdam(p, lr=0.01))

    def test_adam_weight_decay(self, dtype):
        self._run(
            dtype,
            lambda p: nn.Adam(p, lr=0.01, weight_decay=0.1),
            lambda p: _RefAdam(p, lr=0.01, weight_decay=0.1),
        )

    def test_adamw(self, dtype):
        self._run(
            dtype,
            lambda p: nn.AdamW(p, lr=0.01, weight_decay=0.05),
            lambda p: _RefAdamW(p, lr=0.01, weight_decay=0.05),
        )

    def test_sparse_grads_skip_cleanly(self, dtype):
        """Params with grad=None are untouched, as before."""
        rng = np.random.default_rng(3)
        fast_params, ref_params = _clone_params(rng, SHAPES, dtype)
        fast, ref = nn.AdamW(fast_params, lr=0.01), _RefAdamW(ref_params, lr=0.01)
        _set_grads(rng, fast_params, ref_params, dtype)
        fast_params[1].grad = None
        ref_params[1].grad = None
        before = fast_params[1].data.copy()
        fast.step()
        ref.step()
        np.testing.assert_array_equal(fast_params[1].data, before)
        for pf, pr in zip(fast_params, ref_params):
            np.testing.assert_array_equal(pf.data, pr.data)


class TestClipGradNorm:
    def test_matches_global_l2_norm(self):
        rng = np.random.default_rng(5)
        params = [Parameter(np.zeros(s)) for s in SHAPES]
        grads = [rng.normal(size=s) for s in SHAPES]
        for p, g in zip(params, grads):
            p.grad = g.copy()
        expected = float(np.sqrt(sum((g**2).sum() for g in grads)))
        returned = nn.clip_grad_norm(params, max_norm=expected * 2)
        assert returned == pytest.approx(expected, rel=1e-12)
        # Below the cap: untouched.
        for p, g in zip(params, grads):
            np.testing.assert_array_equal(p.grad, g)

    def test_clips_in_place_to_max_norm(self):
        rng = np.random.default_rng(6)
        params = [Parameter(np.zeros(s)) for s in SHAPES]
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        nn.clip_grad_norm(params, max_norm=1.0)
        clipped = float(np.sqrt(sum((p.grad**2).sum() for p in params)))
        assert clipped == pytest.approx(1.0, rel=1e-9)

    def test_overflow_fallback_float64(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([1e200, -1e200, 0.0])
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert np.isfinite(norm)
        assert norm == pytest.approx(np.sqrt(2) * 1e200, rel=1e-9)
        assert np.isfinite(param.grad).all()
        assert float(np.sqrt((param.grad**2).sum())) == pytest.approx(1.0, rel=1e-9)

    def test_overflow_fallback_float32(self):
        with nn.default_dtype("float32"):
            param = Parameter(np.full(4, 1e25, dtype=np.float32))
            param.grad = param.data.copy()
            norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert np.isfinite(norm)
        assert np.isfinite(param.grad).all()

    def test_zero_and_empty(self):
        param = Parameter(np.zeros(3))
        assert nn.clip_grad_norm([param], max_norm=1.0) == 0.0
        param.grad = np.zeros(3)
        assert nn.clip_grad_norm([param], max_norm=1.0) == 0.0
