"""Tests for the opt-in op-level profiler."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn import profiler
from repro.nn.tensor import Tensor


def small_training_graph():
    x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
    w = Tensor(np.random.default_rng(1).normal(size=(3, 2)), requires_grad=True)
    loss = (F.relu(x @ w) ** 2).sum()
    loss.backward()
    return x, w


class TestActivation:
    def test_inactive_by_default(self):
        assert profiler.active_profiler() is None
        small_training_graph()  # must not record anywhere
        assert profiler.active_profiler() is None

    def test_active_inside_context_only(self):
        with profiler.profile() as prof:
            assert profiler.active_profiler() is prof
        assert profiler.active_profiler() is None

    def test_nesting_reuses_outer_profiler(self):
        with profiler.profile() as outer:
            with profiler.profile() as inner:
                assert inner is outer
            # Inner exit must not deactivate the outer session.
            assert profiler.active_profiler() is outer
        assert profiler.active_profiler() is None


class TestRecording:
    def test_op_names_calls_and_bytes(self):
        with profiler.profile() as prof:
            small_training_graph()
        ops = prof.summary()
        assert "matmul" in ops
        assert "relu" in ops
        assert ops["matmul"]["calls"] == 1
        # (4, 2) float64 matmul output.
        assert ops["matmul"]["bytes"] == 4 * 2 * 8
        assert ops["matmul"]["backward_calls"] == 1
        assert ops["relu"]["backward_calls"] == 1

    def test_forward_and_backward_time_recorded(self):
        with profiler.profile() as prof:
            small_training_graph()
        assert prof.total_seconds() >= 0.0
        assert any(s.backward_s > 0.0 for s in prof.ops.values())

    def test_no_grad_forward_still_counted(self):
        with profiler.profile() as prof:
            with nn.no_grad():
                x = Tensor(np.ones((2, 2)))
                _ = x @ x
        assert prof.summary()["matmul"]["calls"] == 1

    def test_layer_norm_is_one_node(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)), requires_grad=True)
        with profiler.profile() as prof:
            F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4))).sum().backward()
        ops = prof.summary()
        assert ops["layer_norm"]["calls"] == 1
        assert ops["layer_norm"]["backward_calls"] == 1


class TestReporting:
    def test_render_lists_hottest_ops(self):
        with profiler.profile() as prof:
            small_training_graph()
        table = prof.render()
        assert "matmul" in table
        assert "total" in table

    def test_render_top_truncates(self):
        with profiler.profile() as prof:
            small_training_graph()
        lines = prof.render(top=1).splitlines()
        # header + rule + 1 op row + total row
        assert len(lines) == 4

    def test_render_ops_round_trips_dicts(self):
        with profiler.profile() as prof:
            small_training_graph()
        assert profiler.render_ops(prof.summary()) == prof.render()

    def test_stats_dict_round_trip(self):
        stats = profiler.OpStats(calls=3, bytes=96, forward_s=0.5, backward_s=0.25, backward_calls=3)
        assert profiler.OpStats.from_dict(stats.to_dict()) == stats


class TestRunSummaryIntegration:
    def test_instrumentation_attach_ops_accumulates(self):
        from repro.runtime import Instrumentation, RunSummary

        inst = Instrumentation()
        inst.attach_ops({"matmul": {"calls": 2, "bytes": 64}})
        inst.attach_ops({"matmul": {"calls": 1, "bytes": 32}, "relu": {"calls": 5}})
        summary = inst.summary()
        assert summary.ops["matmul"] == {"calls": 3, "bytes": 96}
        assert summary.ops["relu"] == {"calls": 5}
        rebuilt = RunSummary.from_dict(summary.to_dict())
        assert rebuilt.ops == summary.ops

    def test_summary_without_ops_stays_compact(self):
        from repro.runtime import Instrumentation

        payload = Instrumentation().summary().to_dict()
        assert "ops" not in payload

    def test_trainer_profile_flag(self):
        from repro.training import TrainConfig
        from repro.training.trainer import train_classifier_on_arrays

        rng = np.random.default_rng(0)
        head = nn.Linear(6, 2, rng=rng)
        x = rng.normal(size=(16, 6))
        y = rng.integers(0, 2, size=16)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=2, batch_size=8, profile=True),
        )
        assert result.op_profile  # non-empty
        assert "matmul" in result.op_profile
        # Profiling session closed cleanly.
        assert profiler.active_profiler() is None

    def test_trainer_without_flag_records_nothing(self):
        from repro.training import TrainConfig
        from repro.training.trainer import train_classifier_on_arrays

        rng = np.random.default_rng(0)
        head = nn.Linear(6, 2, rng=rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            rng.normal(size=(8, 6)),
            rng.integers(0, 2, size=8),
            TrainConfig(epochs=1, batch_size=8),
        )
        assert result.op_profile == {}
