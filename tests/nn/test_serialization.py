"""Tests for checkpoint save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def build_model(seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.GELU(), nn.Linear(8, 2, rng=rng))


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        src = build_model(0)
        dst = build_model(1)
        path = nn.save_checkpoint(src, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        nn.load_checkpoint(dst, path)
        x = nn.Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        np.testing.assert_array_equal(src(x).data, dst(x).data)

    def test_metadata_round_trip(self, tmp_path):
        model = build_model()
        meta = {"name": "test", "steps": 7}
        nn.save_checkpoint(model, tmp_path / "m.npz", metadata=meta)
        loaded = nn.load_checkpoint(build_model(3), tmp_path / "m.npz")
        assert loaded == meta

    def test_load_without_suffix(self, tmp_path):
        model = build_model()
        nn.save_checkpoint(model, tmp_path / "weights")
        assert nn.load_checkpoint(build_model(1), tmp_path / "weights") == {}

    def test_creates_parent_dirs(self, tmp_path):
        path = nn.save_checkpoint(build_model(), tmp_path / "a" / "b" / "c.npz")
        assert path.exists()

    def test_incompatible_architecture_raises(self, tmp_path):
        rng = np.random.default_rng(0)
        small = nn.Linear(4, 2, rng=rng)
        nn.save_checkpoint(small, tmp_path / "small.npz")
        big = nn.Linear(8, 2, rng=rng)
        with pytest.raises(ValueError):
            nn.load_checkpoint(big, tmp_path / "small.npz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            nn.load_checkpoint(build_model(), tmp_path / "nope.npz")


class TestDtypeRoundTrip:
    """Checkpoints preserve per-parameter dtype across default-dtype changes."""

    def _dtypes(self, module: nn.Module) -> set[str]:
        return {param.data.dtype.name for _, param in module.named_parameters()}

    def test_float32_checkpoint_survives_float64_default(self, tmp_path):
        with nn.default_dtype("float32"):
            src = build_model(0)
        assert self._dtypes(src) == {"float32"}
        path = nn.save_checkpoint(src, tmp_path / "f32.npz")
        with nn.default_dtype("float64"):
            dst = build_model(1)
            assert self._dtypes(dst) == {"float64"}
            nn.load_checkpoint(dst, path)
        assert self._dtypes(dst) == {"float32"}
        for (_, a), (_, b) in zip(src.named_parameters(), dst.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_float64_checkpoint_survives_float32_default(self, tmp_path):
        with nn.default_dtype("float64"):
            src = build_model(0)
        path = nn.save_checkpoint(src, tmp_path / "f64.npz")
        with nn.default_dtype("float32"):
            dst = build_model(1)
            nn.load_checkpoint(dst, path)
        assert self._dtypes(dst) == {"float64"}
        for (_, a), (_, b) in zip(src.named_parameters(), dst.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_default_still_casts(self):
        """Direct load_state_dict keeps the receiving model's dtype."""
        with nn.default_dtype("float64"):
            src = build_model(0)
        with nn.default_dtype("float32"):
            dst = build_model(1)
        dst.load_state_dict(src.state_dict())
        assert self._dtypes(dst) == {"float32"}
