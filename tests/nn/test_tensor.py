"""Tests for the autodiff Tensor: forward values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, as_tensor, concatenate, stack, where


def numeric_grad(build_loss, param: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Finite-difference gradient of ``build_loss()`` wrt every entry."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(build_loss().data)
        flat[i] = original - eps
        minus = float(build_loss().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def analytic_grad(build_loss, param: Tensor) -> np.ndarray:
    param.grad = None
    loss = build_loss()
    loss.backward()
    return param.grad.copy()


def assert_grad_matches(build_loss, param: Tensor, atol=1e-5, rtol=1e-4):
    analytic = analytic_grad(build_loss, param)
    numeric = numeric_grad(build_loss, param)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_from_tensor_shares_semantics(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad

    def test_item_scalar(self):
        assert Tensor(5.0).item() == 5.0

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_array_equal(out.data, [2.0])

    def test_sub_rsub(self):
        np.testing.assert_array_equal((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_array_equal((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_array_equal((Tensor([3.0]) * 2.0).data, [6.0])
        np.testing.assert_array_equal((Tensor([6.0]) / 2.0).data, [3.0])
        np.testing.assert_array_equal((6.0 / Tensor([2.0])).data, [3.0])

    def test_pow(self):
        np.testing.assert_array_equal((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_array_equal((a @ b).data, np.array([[19, 22], [43, 50]], dtype=float))

    def test_comparisons_return_bool_arrays(self):
        a = Tensor([1.0, 3.0])
        assert (a > 2.0).tolist() == [False, True]
        assert (a < 2.0).tolist() == [True, False]
        assert (a >= 3.0).tolist() == [False, True]
        assert (a <= 1.0).tolist() == [True, False]


class TestGradients:
    def test_add_grad_broadcast(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        assert_grad_matches(lambda: ((a + b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a + b) ** 2).sum(), b)

    def test_mul_grad(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        b = Tensor([[2.0, 0.5], [1.0, -1.0]], requires_grad=True)
        assert_grad_matches(lambda: (a * b).sum(), a)
        assert_grad_matches(lambda: (a * b).sum(), b)

    def test_div_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([2.0, 4.0, 5.0], requires_grad=True)
        assert_grad_matches(lambda: (a / b).sum(), a)
        assert_grad_matches(lambda: (a / b).sum(), b)

    def test_matmul_grad_2d(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_grad_batched(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_grad_broadcast_batch(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_vector_vector(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        loss = a @ b
        loss.backward()
        np.testing.assert_array_equal(a.grad, [3.0, 4.0])
        np.testing.assert_array_equal(b.grad, [1.0, 2.0])

    def test_pow_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        assert_grad_matches(lambda: (a**3).sum(), a)

    def test_exp_log_sqrt_tanh_abs_grads(self):
        a = Tensor([0.5, 1.5, 2.5], requires_grad=True)
        assert_grad_matches(lambda: a.exp().sum(), a)
        assert_grad_matches(lambda: a.log().sum(), a)
        assert_grad_matches(lambda: a.sqrt().sum(), a)
        assert_grad_matches(lambda: a.tanh().sum(), a)
        assert_grad_matches(lambda: a.abs().sum(), a)

    def test_clip_grad(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        loss = (a.clip(-1.0, 1.0) * Tensor([1.0, 2.0, 3.0])).sum()
        loss.backward()
        np.testing.assert_array_equal(a.grad, [0.0, 2.0, 0.0])

    def test_reused_tensor_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        loss = (a * a).sum()  # d/da a^2 = 2a
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0])


class TestShapes:
    def test_reshape_grad(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        assert_grad_matches(lambda: (a.reshape(2, 3) ** 2).sum(), a)

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_grad(self):
        a = Tensor(np.random.default_rng(5).normal(size=(2, 3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.transpose(2, 0, 1) ** 2).sum(), a)

    def test_transpose_default_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)
        assert a.T.shape == (4, 3, 2)

    def test_swapaxes(self):
        a = Tensor(np.random.default_rng(6).normal(size=(2, 3, 4)), requires_grad=True)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        assert_grad_matches(lambda: (a.swapaxes(1, 2) ** 2).sum(), a)

    def test_getitem_slice_grad(self):
        a = Tensor(np.arange(10, dtype=float), requires_grad=True)
        loss = (a[2:5] ** 2).sum()
        loss.backward()
        expected = np.zeros(10)
        expected[2:5] = 2 * np.arange(2, 5)
        np.testing.assert_array_equal(a.grad, expected)

    def test_getitem_fancy_duplicate_indices_accumulate(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        loss = a[np.array([0, 0, 1])].sum()
        loss.backward()
        np.testing.assert_array_equal(a.grad, [2.0, 1.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)))
        assert a.sum().data == 6.0
        assert a.sum(axis=0).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_sum_grad(self):
        a = Tensor(np.random.default_rng(7).normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.sum(axis=1) ** 2).sum(), a)

    def test_mean_matches_numpy(self):
        data = np.random.default_rng(8).normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(data).mean(axis=0).data, data.mean(axis=0))

    def test_mean_grad(self):
        a = Tensor(np.random.default_rng(9).normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.mean(axis=0) ** 2).sum(), a)

    def test_var(self):
        data = np.random.default_rng(10).normal(size=(5, 6))
        np.testing.assert_allclose(Tensor(data).var(axis=1).data, data.var(axis=1))

    def test_max_grad_splits_ties(self):
        a = Tensor([1.0, 3.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        data = np.random.default_rng(11).normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(data).max(axis=1).data, data.max(axis=1))


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # f = (a*2) + (a*3); df/da = 5
        a = Tensor([1.0], requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_second_backward_after_freeing_is_isolated(self):
        a = Tensor([1.0], requires_grad=True)
        loss = (a * 2).sum()
        loss.backward()
        first = a.grad.copy()
        # gradients accumulate across independent graphs
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_double_backward_raises_graph_freed(self):
        # A second backward() through a freed graph used to silently
        # produce wrong (partial) gradients; now it must raise.
        a = Tensor([1.0, 2.0], requires_grad=True)
        loss = (a * 3).sum()
        loss.backward()
        with pytest.raises(RuntimeError, match="already been freed"):
            loss.backward()

    def test_backward_through_freed_subgraph_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        hidden = a * 3
        (hidden * 2).sum().backward()
        # A new graph hanging off the freed intermediate cannot silently
        # stop gradient flow at the freed node.
        with pytest.raises(RuntimeError, match="freed"):
            (hidden * 5).sum().backward()

    def test_retain_graph_allows_second_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        loss = (a * 3).sum()
        loss.backward(retain_graph=True)
        np.testing.assert_allclose(a.grad, [3.0, 3.0])
        loss.backward()  # second pass accumulates
        np.testing.assert_allclose(a.grad, [6.0, 6.0])
        # the final non-retaining pass freed the graph
        with pytest.raises(RuntimeError, match="already been freed"):
            loss.backward()


class TestCombinators:
    def test_as_tensor_idempotent(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor([1.0]), Tensor)

    def test_concatenate_values_and_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * Tensor(np.arange(10, dtype=float).reshape(5, 2))).sum().backward()
        np.testing.assert_array_equal(a.grad, np.arange(4, dtype=float).reshape(2, 2))
        np.testing.assert_array_equal(b.grad, np.arange(4, 10, dtype=float).reshape(3, 2))

    def test_stack_values_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_where_selects_and_routes_grads(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_array_equal(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])
