"""Tests for the transformer encoder stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


@pytest.fixture
def encoder(rng):
    return nn.TransformerEncoder(d_model=16, num_heads=4, d_ff=32, num_layers=3, rng=rng)


class TestEncoder:
    def test_output_shape(self, encoder, rng):
        out = encoder(Tensor(rng.normal(size=(2, 9, 16))))
        assert out.shape == (2, 9, 16)

    def test_layer_count(self, encoder):
        assert len(encoder.layers) == 3
        assert encoder.num_layers == 3

    def test_final_norm_applied(self, encoder, rng):
        out = encoder(Tensor(rng.normal(size=(4, 6, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_deterministic_by_seed(self):
        def build():
            return nn.TransformerEncoder(8, 2, 16, 2, rng=np.random.default_rng(3))

        x = np.random.default_rng(0).normal(size=(1, 4, 8))
        np.testing.assert_array_equal(build()(Tensor(x)).data, build()(Tensor(x)).data)

    def test_layers_have_distinct_weights(self, encoder):
        w0 = encoder.layers[0].ff_in.weight.data
        w1 = encoder.layers[1].ff_in.weight.data
        assert not np.array_equal(w0, w1)

    def test_gradients_reach_every_layer(self, encoder, rng):
        x = Tensor(rng.normal(size=(2, 5, 16)), requires_grad=True)
        (encoder(x) ** 2).mean().backward()
        for layer in encoder.layers:
            assert layer.ff_in.weight.grad is not None
            assert np.abs(layer.ff_in.weight.grad).sum() > 0

    def test_dropout_only_in_training(self, rng):
        enc = nn.TransformerEncoder(8, 2, 16, 1, dropout=0.5, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        enc.eval()
        a = enc(Tensor(x)).data
        b = enc(Tensor(x)).data
        np.testing.assert_array_equal(a, b)
        enc.train()
        c = enc(Tensor(x)).data
        d = enc(Tensor(x)).data
        assert not np.array_equal(c, d)

    def test_residual_path_preserves_information(self, rng):
        """Pre-norm blocks keep a residual path: output correlates with input."""
        enc = nn.TransformerEncoder(8, 2, 16, 1, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        out = enc(Tensor(x)).data
        corr = np.corrcoef(x.reshape(-1), out.reshape(-1))[0, 1]
        assert abs(corr) > 0.1
