"""Property sweeps: registry-wide gradchecks and @given-based properties."""
