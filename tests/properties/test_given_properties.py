"""``@given``-driven properties of adapters and the autodiff core.

These complement the fixed-seed invariants in
``repro.testing.invariants`` by sweeping randomly drawn shapes and
values: each property runs over many seeded examples and shrinks any
counterexample before reporting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.nn import Tensor
from repro.testing import arrays, broadcastable_pairs, given, integers, series_batches

#: Adapters that are deterministic functions of their input statistics
#: (no RNG beyond the seed) and reduce channels D -> D'.
_REDUCING_ADAPTERS = ("pca", "scaled_pca", "svd", "var", "rand_proj")


class TestAdapterProperties:
    @pytest.mark.parametrize("name", _REDUCING_ADAPTERS)
    def test_output_shape_contract(self, name):
        @given(max_examples=10, x=series_batches(min_d=2))
        def property_shape(x):
            k = min(2, x.shape[-1])
            adapter = make_adapter(name, output_channels=k, seed=0)
            out = adapter.fit_transform(x)
            assert out.shape == (x.shape[0], x.shape[1], k)

        property_shape()

    @pytest.mark.parametrize("name", ("pca", "scaled_pca", "svd"))
    def test_permutation_equivariance(self, name):
        """Channel order must not matter for spectral adapters."""

        @given(max_examples=10, x=series_batches(min_d=3), perm_seed=integers(0, 50))
        def property_equivariant(x, perm_seed):
            perm = np.random.default_rng(perm_seed).permutation(x.shape[-1])
            adapter = make_adapter(name, output_channels=2, seed=0)
            permuted = make_adapter(name, output_channels=2, seed=0)
            np.testing.assert_allclose(
                adapter.fit_transform(x),
                permuted.fit_transform(x[:, :, perm]),
                atol=1e-8,
            )

        property_equivariant()

    def test_transform_is_deterministic_after_fit(self):
        @given(max_examples=10, x=series_batches(min_d=2))
        def property_deterministic(x):
            adapter = make_adapter("pca", output_channels=2, seed=0).fit(x)
            np.testing.assert_array_equal(adapter.transform(x), adapter.transform(x))

        property_deterministic()


class TestTensorProperties:
    def test_add_matches_numpy_broadcasting(self):
        @given(max_examples=20, pair=broadcastable_pairs())
        def property_add(pair):
            a, b = pair
            out = Tensor(a) + Tensor(b)
            np.testing.assert_allclose(out.data, a + b)

        property_add()

    def test_mul_gradient_unbroadcasts_to_input_shape(self):
        """Backward must return gradients with each input's own shape,
        whatever numpy broadcast the forward pass performed."""

        @given(max_examples=20, pair=broadcastable_pairs())
        def property_grad_shape(pair):
            a, b = pair
            ta = Tensor(a, requires_grad=True)
            tb = Tensor(b, requires_grad=True)
            (ta * tb).sum().backward()
            assert ta.grad.shape == a.shape
            assert tb.grad.shape == b.shape

        property_grad_shape()

    def test_sum_then_mean_consistency(self):
        @given(max_examples=20, x=arrays())
        def property_reduce(x):
            tensor = Tensor(x)
            np.testing.assert_allclose(
                tensor.mean().data, tensor.sum().data / x.size, rtol=1e-10
            )

        property_reduce()

    def test_softmax_rows_normalised(self):
        from repro.nn import functional as F

        @given(max_examples=15, x=arrays(shape=(4, 6), scale=3.0))
        def property_softmax(x):
            out = F.softmax(Tensor(x), axis=-1)
            np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-8)
            assert (out.data >= 0).all()

        property_softmax()
