"""Registry-wide gradient verification: every differentiable op, both dtypes.

This is the enforcement point for the op registry contract: adding a
differentiable op to ``repro.nn`` without a gradcheck case makes this
module fail *by the op's name* (see
``tests/testing/test_gradcheck.py`` for the negative-path demos).
"""

from __future__ import annotations

import pytest

from repro.nn.tensor import OP_REGISTRY
from repro.testing import assert_full_coverage, missing_checks, run_op_sweep, unregistered_ops


def test_registry_is_fully_covered():
    """No registered op lacks a case; no graph-builder lacks registration."""
    assert missing_checks() == []
    assert unregistered_ops() == []
    assert_full_coverage()


def test_registry_has_not_shrunk():
    """The op count only grows; shrinking means ops were deregistered."""
    assert len(OP_REGISTRY) >= 36


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_full_op_sweep(dtype):
    """All cases of every covered op pass finite-difference checks."""
    results = run_op_sweep(dtypes=(dtype,))
    assert all(result.passed for result in results)
    assert {result.op for result in results} == set(
        name for name, info in OP_REGISTRY.items() if info.differentiable
    )
