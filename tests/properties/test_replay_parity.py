"""Registry-wide replay parity: compiled replay is bit-identical to eager.

This is the enforcement point for the compiled-engine contract
(:mod:`repro.nn.graph`): every registered op must either replay
bit-identically through capture → compile → run, or be declared
eager-only and *refuse* capture.  An op added to the registry without
a replay kernel makes this module fail **by the op's name** — exactly
mirroring the gradcheck coverage sweep in ``test_op_coverage.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import graph
from repro.nn.tensor import OP_REGISTRY, OpInfo
from repro.testing import (
    assert_replay_coverage,
    replay_coverage_problems,
    run_replay_sweep,
)


def test_replay_contract_is_fully_covered():
    """Every registered op has a kernel or an eager-only declaration."""
    assert graph.missing_replay_kernels() == []
    assert graph.stale_replay_kernels() == []
    assert replay_coverage_problems() == []
    assert_replay_coverage()
    graph.assert_replay_coverage()


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_full_replay_sweep(dtype):
    """All cases of every op replay bit-identically (or refuse capture)."""
    results = run_replay_sweep(dtypes=(dtype,))
    assert {result.op for result in results} == set(OP_REGISTRY)
    for result in results:
        if result.op in graph.EAGER_ONLY_OPS:
            assert result.eager_only
        else:
            assert result.steps >= 1


def test_unknown_op_fails_by_name():
    """A new op without a replay kernel is reported by its own name."""
    fake = OpInfo(
        name="frobnicate",
        qualname="Tensor.frobnicate",
        module="repro.nn.tensor",
        differentiable=True,
    )
    OP_REGISTRY["frobnicate"] = fake
    try:
        assert "frobnicate" in graph.missing_replay_kernels()
        problems = replay_coverage_problems()
        assert any("frobnicate" in p for p in problems)
        with pytest.raises(AssertionError, match="frobnicate"):
            run_replay_sweep()
    finally:
        del OP_REGISTRY["frobnicate"]


def test_stale_kernel_fails_by_name():
    """A kernel for a deregistered op is reported by name."""

    @graph.replay_kernel("vanished_op")
    def _k(a, *, out=None):  # pragma: no cover - never executed
        return a

    try:
        assert "vanished_op" in graph.stale_replay_kernels()
        with pytest.raises(AssertionError, match="vanished_op"):
            graph.assert_replay_coverage()
    finally:
        del graph.REPLAY_KERNELS["vanished_op"]


def test_dropout_refuses_capture_in_training_mode():
    """The one nondeterministic op cannot enter a compiled graph."""
    from repro.nn import functional as F

    rng = np.random.default_rng(0)
    x = np.linspace(-1, 1, 12).reshape(3, 4).astype(np.float32)
    with pytest.raises(graph.TraceError, match="dropout"):
        graph.capture(lambda t: F.dropout(t, 0.5, True, rng), [x])
    # Eval-mode dropout is the identity: nothing is recorded, so a
    # graph made of only dropout has no traced output and must refuse.
    with pytest.raises(graph.TraceError):
        graph.capture(lambda t: F.dropout(t, 0.5, False, rng), [x])
    # ... but inside a larger graph it simply disappears.
    trace = graph.capture(lambda t: F.dropout(F.relu(t), 0.5, False, rng), [x])
    assert [s.op for s in trace.steps] == ["relu"]
