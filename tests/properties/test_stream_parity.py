"""The streaming equivalence contract, property-tested.

For generated ``(length, window, stride, D)`` geometries, a
:class:`~repro.stream.StreamingClassifier` fed **one sample at a
time** must produce logits bit-identical to the offline
``pipeline.predict_logits(windows, batch_size=width)`` on the same
windows — in both eager and compiled execution — and push granularity
(singles, chunks of 7, all-at-once) must be invisible in the bits.

Pipelines are fitted once per channel count; the property then draws
geometries and data seeds.  Bit-identity (``np.array_equal``, not
allclose) is the whole point: the fixed-width padded execution
discipline makes streaming a *replay* of the offline recipe, not an
approximation of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.models import load_pretrained
from repro.stream import StreamingClassifier
from repro.stream.windows import window_batch, window_starts
from repro.testing import given, integers, sampled_from
from repro.training import AdapterPipeline, TrainConfig

WIDTH = 8  # fixed execution width shared by streaming and offline


def _fit_pipeline(channels: int) -> AdapterPipeline:
    rng = np.random.default_rng(100 + channels)
    x = rng.normal(size=(16, 24, channels))
    y = rng.integers(0, 3, size=16)
    pipeline = AdapterPipeline(
        load_pretrained("moment-tiny", seed=0),
        make_adapter("pca", 2, seed=0),
        3,
        seed=0,
    )
    pipeline.fit(x, y, config=TrainConfig(epochs=1, batch_size=8, seed=0))
    return pipeline


@pytest.fixture(scope="module")
def pipelines():
    return {d: _fit_pipeline(d) for d in (3, 6)}


def _series(data_seed: int, length: int, channels: int) -> np.ndarray:
    return np.random.default_rng(data_seed).normal(size=(length, channels))


def _offline_logits(pipeline, x, window, stride, compiled):
    starts = window_starts(len(x), window, stride)
    windows = window_batch(x, starts, window)
    return pipeline.predict_logits(windows, batch_size=WIDTH, compiled=compiled)


def _stream_logits(pipeline, x, window, stride, compiled, chunk=1):
    stream = StreamingClassifier(
        pipeline, window, stride, batch_size=WIDTH, compiled=compiled
    )
    if chunk is None:
        stream.push(x)
    else:
        for lo in range(0, len(x), chunk):
            stream.push(x[lo : lo + chunk])
    return np.stack([p.logits for p in stream.emitted], axis=0)


class TestStreamOfflineParity:
    def test_sample_at_a_time_matches_offline_compiled(self, pipelines):
        @given(
            max_examples=5,
            channels=sampled_from((3, 6)),
            window=integers(6, 14),
            stride_raw=integers(1, 14),
            extra=integers(0, 24),
            data_seed=integers(0, 10_000),
        )
        def property_(channels, window, stride_raw, extra, data_seed):
            stride = 1 + stride_raw % window
            x = _series(data_seed, window + extra, channels)
            pipeline = pipelines[channels]
            offline = _offline_logits(pipeline, x, window, stride, compiled=True)
            streamed = _stream_logits(pipeline, x, window, stride, compiled=True)
            assert streamed.shape == offline.shape
            np.testing.assert_array_equal(streamed, offline)

        property_()

    def test_sample_at_a_time_matches_offline_eager(self, pipelines):
        @given(
            max_examples=3,
            channels=sampled_from((3, 6)),
            window=integers(6, 12),
            stride_raw=integers(1, 12),
            extra=integers(0, 16),
            data_seed=integers(0, 10_000),
        )
        def property_(channels, window, stride_raw, extra, data_seed):
            stride = 1 + stride_raw % window
            x = _series(data_seed, window + extra, channels)
            pipeline = pipelines[channels]
            offline = _offline_logits(pipeline, x, window, stride, compiled=False)
            streamed = _stream_logits(pipeline, x, window, stride, compiled=False)
            np.testing.assert_array_equal(streamed, offline)

        property_()

    def test_eager_and_compiled_streams_agree(self, pipelines):
        x = _series(42, 40, 6)
        eager = _stream_logits(pipelines[6], x, 10, 5, compiled=False)
        compiled = _stream_logits(pipelines[6], x, 10, 5, compiled=True)
        np.testing.assert_array_equal(eager, compiled)


class TestChunkingInvariance:
    def test_push_granularity_is_invisible(self, pipelines):
        @given(
            max_examples=4,
            channels=sampled_from((3, 6)),
            window=integers(6, 14),
            stride_raw=integers(1, 14),
            extra=integers(4, 24),
            data_seed=integers(0, 10_000),
        )
        def property_(channels, window, stride_raw, extra, data_seed):
            stride = 1 + stride_raw % window
            x = _series(data_seed, window + extra, channels)
            pipeline = pipelines[channels]
            singles = _stream_logits(pipeline, x, window, stride, True, chunk=1)
            sevens = _stream_logits(pipeline, x, window, stride, True, chunk=7)
            whole = _stream_logits(pipeline, x, window, stride, True, chunk=None)
            np.testing.assert_array_equal(singles, sevens)
            np.testing.assert_array_equal(singles, whole)

        property_()

    def test_emission_metadata_matches_geometry(self, pipelines):
        x = _series(7, 61, 3)
        stream = StreamingClassifier(pipelines[3], 12, 4, batch_size=WIDTH)
        for sample in x:
            stream.push(sample)
        starts = window_starts(len(x), 12, 4)
        assert [p.start for p in stream.emitted] == list(starts)
        assert [p.window_index for p in stream.emitted] == list(range(len(starts)))
