"""Tests for run budgets and outcome classification."""

from __future__ import annotations

import pytest

from repro.resources import DEFAULT_BUDGET, RunBudget, RunStatus, SimulatedRun


class TestRunStatus:
    def test_paper_labels(self):
        assert str(RunStatus.OK) == "OK"
        assert str(RunStatus.TIMEOUT) == "TO"
        assert str(RunStatus.OUT_OF_MEMORY) == "COM"


class TestRunBudget:
    def test_defaults_match_paper(self):
        assert DEFAULT_BUDGET.time_limit_s == 7200.0
        assert DEFAULT_BUDGET.memory_limit_bytes == 32 * 1024**3

    def test_ok_within_budget(self):
        assert DEFAULT_BUDGET.classify(100.0, 1e9) is RunStatus.OK

    def test_timeout(self):
        assert DEFAULT_BUDGET.classify(8000.0, 1e9) is RunStatus.TIMEOUT

    def test_oom(self):
        assert DEFAULT_BUDGET.classify(100.0, 40 * 1024**3) is RunStatus.OUT_OF_MEMORY

    def test_oom_takes_precedence_over_timeout(self):
        """A job that would OOM never reaches the time limit."""
        assert DEFAULT_BUDGET.classify(9000.0, 40 * 1024**3) is RunStatus.OUT_OF_MEMORY

    def test_boundary_is_inclusive(self):
        budget = RunBudget(time_limit_s=100.0, memory_limit_bytes=1000)
        assert budget.classify(100.0, 1000) is RunStatus.OK


class TestSimulatedRun:
    def test_convenience_properties(self):
        run = SimulatedRun(RunStatus.OK, seconds=3600.0, peak_memory_bytes=2 * 1024**3, flops=1e15)
        assert run.ok
        assert run.hours == pytest.approx(1.0)
        assert run.peak_memory_gib == pytest.approx(2.0)

    def test_not_ok(self):
        run = SimulatedRun(RunStatus.TIMEOUT, 9000.0, 0.0, 0.0)
        assert not run.ok
