"""Tests for the analytic FLOPs / memory cost model."""

from __future__ import annotations

import pytest

from repro.models import get_config
from repro.resources import (
    REGIMES,
    TrainingJob,
    adapter_fit_flops,
    embedding_pass_flops,
    forward_flops_per_sample,
    head_training_flops,
    inference_memory_bytes,
    peak_training_memory_bytes,
    training_step_flops,
)


def job(channels=10, regime="full", model="moment-large", train=100, test=50, classes=4):
    return TrainingJob(
        config=get_config(model),
        train_size=train,
        test_size=test,
        sequence_length=400,
        channels=channels,
        num_classes=classes,
        regime=REGIMES[regime],
    )


class TestFlops:
    def test_forward_linear_in_channels(self):
        """The paper's core complaint: cost scales linearly with D."""
        base = forward_flops_per_sample(job(channels=10))
        double = forward_flops_per_sample(job(channels=20))
        assert double == pytest.approx(2 * base)

    def test_adapter_reduces_flops_by_channel_ratio(self):
        full = forward_flops_per_sample(job(channels=1345))
        reduced = forward_flops_per_sample(job(channels=5))
        assert full / reduced == pytest.approx(1345 / 5)

    def test_step_flops_use_backward_multiplier(self):
        full = training_step_flops(job(regime="full"), 16)
        frozen = training_step_flops(job(regime="adapter_head_trainable"), 16)
        assert full / frozen == pytest.approx(3.0 / 2.5)

    def test_embedding_pass_counts_train_and_test(self):
        assert embedding_pass_flops(job(train=100, test=50)) == pytest.approx(
            150 * forward_flops_per_sample(job())
        )

    def test_head_training_is_negligible_vs_encoder(self):
        head = head_training_flops(job(regime="head"))
        encoder = embedding_pass_flops(job(regime="head"))
        assert head < encoder / 100

    def test_moment_more_expensive_than_vit(self):
        assert forward_flops_per_sample(job(model="moment-large")) > forward_flops_per_sample(
            job(model="vit-base-ts")
        )


class TestAdapterFitFlops:
    def test_pca_quadratic_in_channels(self):
        small = adapter_fit_flops(10, 5, 100, 50, "pca")
        big = adapter_fit_flops(100, 5, 100, 50, "pca")
        assert big > 50 * small

    def test_rand_proj_free(self):
        assert adapter_fit_flops(1000, 5, 100, 50, "rand_proj") == 0.0

    def test_var_linear(self):
        assert adapter_fit_flops(10, 5, 100, 50, "var") == 100 * 50 * 10

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            adapter_fit_flops(10, 5, 100, 50, "umap")


class TestMemory:
    def test_full_ft_memory_linear_in_channels(self):
        """Activation memory grows by equal increments per channel."""
        m10 = peak_training_memory_bytes(job(channels=10))
        m20 = peak_training_memory_bytes(job(channels=20))
        m30 = peak_training_memory_bytes(job(channels=30))
        assert m20 - m10 == pytest.approx(m30 - m20)
        assert m20 > m10

    def test_regime_memory_ordering(self):
        """full (optimizer for everything) > lcomb (frozen encoder) >
        cached-embedding head training."""
        full = peak_training_memory_bytes(job(channels=5, regime="full"))
        lcomb = peak_training_memory_bytes(job(channels=5, regime="adapter_head_trainable"))
        cached = peak_training_memory_bytes(job(channels=5, regime="adapter_head_cached"))
        assert full > lcomb > cached

    def test_optimizer_state_charged_only_when_trainable(self):
        trainable = peak_training_memory_bytes(job(channels=5, regime="full"))
        frozen = peak_training_memory_bytes(job(channels=5, regime="adapter_head_trainable"))
        params = get_config("moment-large").encoder_parameter_count()
        # difference ~ optimizer bytes (12/param) + backward-multiplier-free terms
        assert trainable - frozen >= 12 * params * 0.9

    def test_inference_memory_bounded_for_wide_inputs(self):
        """Chunked inference keeps memory flat beyond the chunk width."""
        narrow = inference_memory_bytes(job(channels=64, regime="head"))
        wide = inference_memory_bytes(job(channels=1345, regime="head"))
        assert wide == narrow

    def test_effective_epochs_override(self):
        j = TrainingJob(
            config=get_config("moment-large"),
            train_size=10,
            test_size=10,
            sequence_length=100,
            channels=5,
            num_classes=2,
            regime=REGIMES["full"],
            epochs=7,
        )
        assert j.effective_epochs == 7
        assert job().effective_epochs == REGIMES["full"].epochs


class TestTokens:
    def test_tokens_use_padded_context(self):
        j = job(channels=3)
        # moment-large pads to 512, patch 8 -> 64 tokens per channel
        assert j.tokens_per_channel == 64
        assert j.tokens_per_sample == 192
