"""Golden tests: the simulator must reproduce the paper's resource results.

These are the calibration regression tests — if the cost model or its
constants drift, the Table-1 OK/TO/COM pattern, the lcomb 9/12 count
and the Figure-1 speedup ratios break here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_info, dataset_names
from repro.resources import RunStatus, V100_32GB, regime_for_adapter, simulate_finetuning

#: Paper Table 1: outcome of full fine-tuning without adapter.
PAPER_TABLE1 = {
    "DuckDuckGeese": ("COM", "COM"),
    "FaceDetection": ("COM", "COM"),
    "FingerMovements": ("COM", "COM"),
    "HandMovementDirection": ("OK", "OK"),
    "Heartbeat": ("COM", "COM"),
    "InsectWingbeat": ("COM", "COM"),
    "JapaneseVowels": ("OK", "OK"),
    "MotorImagery": ("COM", "COM"),
    "NATOPS": ("OK", "TO"),
    "PEMS-SF": ("COM", "COM"),
    "PhonemeSpectra": ("OK", "TO"),
    "SpokenArabicDigits": ("OK", "TO"),
}


class TestTable1Pattern:
    @pytest.mark.parametrize("dataset", dataset_names())
    def test_vit_full_ft_outcome(self, dataset):
        run = simulate_finetuning(
            "vit-base-ts", dataset_info(dataset), adapter=None, full_finetune=True
        )
        assert str(run.status) == PAPER_TABLE1[dataset][0]

    @pytest.mark.parametrize("dataset", dataset_names())
    def test_moment_full_ft_outcome(self, dataset):
        run = simulate_finetuning(
            "moment-large", dataset_info(dataset), adapter=None, full_finetune=True
        )
        assert str(run.status) == PAPER_TABLE1[dataset][1]

    def test_paper_full_ft_counts(self):
        """ViT fits 5/12, MOMENT 2/12 under full fine-tuning (paper §4)."""
        vit_ok = sum(
            simulate_finetuning("vit-base-ts", dataset_info(d), full_finetune=True).ok
            for d in dataset_names()
        )
        moment_ok = sum(
            simulate_finetuning("moment-large", dataset_info(d), full_finetune=True).ok
            for d in dataset_names()
        )
        assert vit_ok == 5
        assert moment_ok == 2


class TestAdapterOutcomes:
    def test_moment_lcomb_nine_of_twelve(self):
        """Paper: lcomb lets 9/12 datasets fit for MOMENT (4.5x more)."""
        statuses = {
            d: simulate_finetuning("moment-large", dataset_info(d), adapter="lcomb").status
            for d in dataset_names()
        }
        ok = [d for d, s in statuses.items() if s is RunStatus.OK]
        assert len(ok) == 9
        failed = {d for d, s in statuses.items() if s is not RunStatus.OK}
        assert failed == {"FaceDetection", "PhonemeSpectra", "SpokenArabicDigits"}

    def test_vit_lcomb_all_twelve(self):
        """Paper: lcomb lets 12/12 datasets fit for ViT."""
        assert all(
            simulate_finetuning("vit-base-ts", dataset_info(d), adapter="lcomb").ok
            for d in dataset_names()
        )

    @pytest.mark.parametrize("adapter", ["pca", "svd", "rand_proj", "var"])
    @pytest.mark.parametrize("model", ["moment-large", "vit-base-ts"])
    def test_fit_once_adapters_always_fit(self, adapter, model):
        """Table 2: no COM/TO entries in the fit-once adapter columns."""
        assert all(
            simulate_finetuning(model, dataset_info(d), adapter=adapter).ok
            for d in dataset_names()
        )

    @pytest.mark.parametrize("model", ["moment-large", "vit-base-ts"])
    def test_head_only_always_fits(self, model):
        """Table 2 'head' column has values for all 12 datasets."""
        assert all(
            simulate_finetuning(model, dataset_info(d), adapter=None).ok
            for d in dataset_names()
        )


class TestSpeedups:
    def _mean_seconds(self, model, adapter):
        seconds = [
            min(simulate_finetuning(model, dataset_info(d), adapter=adapter).seconds, 7200.0)
            for d in dataset_names()
        ]
        return float(np.mean(seconds))

    def test_moment_speedup_around_10x(self):
        """Paper abstract: 'up to a 10x speedup' (MOMENT, Figure 1)."""
        speedup = self._mean_seconds("moment-large", None) / self._mean_seconds(
            "moment-large", "pca"
        )
        assert 8.0 < speedup < 13.0

    def test_vit_speedup_around_2x(self):
        """Paper §4: 'for ViT, a two-fold speed increase'."""
        speedup = self._mean_seconds("vit-base-ts", None) / self._mean_seconds(
            "vit-base-ts", "pca"
        )
        assert 1.5 < speedup < 2.6

    def test_lcomb_slowest_adapter(self):
        """Figure 1: lcomb is the slowest configuration for both models."""
        for model in ("moment-large", "vit-base-ts"):
            lcomb = self._mean_seconds(model, "lcomb")
            for adapter in ("pca", "svd", "rand_proj", "var"):
                assert lcomb > self._mean_seconds(model, adapter)

    def test_fit_ratio_claims(self):
        """Paper §4: 4.5x more datasets for MOMENT, 2.4x for ViT."""
        def count(model, adapter, full):
            return sum(
                simulate_finetuning(
                    model, dataset_info(d), adapter=adapter, full_finetune=full
                ).ok
                for d in dataset_names()
            )

        assert count("moment-large", "lcomb", True) / count("moment-large", None, True) == pytest.approx(4.5)
        assert count("vit-base-ts", "lcomb", True) / count("vit-base-ts", None, True) == pytest.approx(2.4)


class TestRegimeMapping:
    def test_no_adapter(self):
        assert regime_for_adapter(None) == "head"
        assert regime_for_adapter(None, full_finetune=True) == "full"

    def test_trainable(self):
        assert regime_for_adapter("lcomb") == "adapter_head_trainable"
        assert regime_for_adapter("lcomb_top_k", full_finetune=True) == "adapter_full"

    def test_fit_once(self):
        assert regime_for_adapter("pca") == "adapter_head_cached"

    def test_fit_once_full_ft_rejected(self):
        with pytest.raises(ValueError):
            regime_for_adapter("pca", full_finetune=True)

    def test_unknown_adapter(self):
        with pytest.raises(KeyError):
            regime_for_adapter("umap")


class TestGpuSpec:
    def test_seconds_for(self):
        assert V100_32GB.seconds_for(V100_32GB.throughput_flops) == pytest.approx(1.0)

    def test_epochs_override_changes_time(self):
        info = dataset_info("NATOPS")
        short = simulate_finetuning("moment-large", info, full_finetune=True, epochs=10)
        long = simulate_finetuning("moment-large", info, full_finetune=True, epochs=250)
        assert short.seconds < long.seconds
        assert short.ok  # 10 epochs fit the budget
