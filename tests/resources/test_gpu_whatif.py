"""What-if tests for the GPU simulator: other hardware, other budgets.

The cost model is parametric in the GPU spec and budget — these tests
verify the counterfactuals behave sensibly (a bigger GPU fits more, a
shorter budget fits less), which is what makes the simulator useful
beyond reproducing the paper's exact setup.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.data import dataset_info, dataset_names
from repro.resources import (
    DEFAULT_BUDGET,
    GpuSpec,
    RunBudget,
    RunStatus,
    V100_32GB,
    simulate_finetuning,
)


class TestBiggerGpu:
    def test_a100_80gb_fits_more_datasets(self):
        """Doubling memory+throughput must fit at least as many jobs."""
        a100 = GpuSpec(
            name="A100-80GB",
            memory_bytes=80 * 1024**3,
            throughput_flops=2 * V100_32GB.throughput_flops,
        )
        budget = RunBudget(memory_limit_bytes=80 * 1024**3)
        v100_ok, a100_ok = 0, 0
        for name in dataset_names():
            info = dataset_info(name)
            v100_ok += simulate_finetuning("moment-large", info, full_finetune=True).ok
            a100_ok += simulate_finetuning(
                "moment-large", info, full_finetune=True, gpu=a100, budget=budget
            ).ok
        assert a100_ok > v100_ok

    def test_finger_fits_on_80gb(self):
        """FingerMovements COMs at ~35 GiB on the V100 — an 80 GiB card
        takes it (then the 2 h clock decides)."""
        info = dataset_info("FingerMovements")
        run = simulate_finetuning(
            "moment-large",
            info,
            full_finetune=True,
            budget=RunBudget(memory_limit_bytes=80 * 1024**3),
        )
        assert run.status is not RunStatus.OUT_OF_MEMORY


class TestTighterBudget:
    def test_shorter_time_limit_times_out_hand(self):
        """Hand fits in 2 h by a thin margin; 1 h must TO it."""
        info = dataset_info("HandMovementDirection")
        normal = simulate_finetuning("moment-large", info, full_finetune=True)
        assert normal.ok
        tight = simulate_finetuning(
            "moment-large",
            info,
            full_finetune=True,
            budget=RunBudget(time_limit_s=3600.0),
        )
        assert tight.status is RunStatus.TIMEOUT

    def test_zero_memory_always_com(self):
        info = dataset_info("JapaneseVowels")
        run = simulate_finetuning(
            "moment-large", info, adapter="pca",
            budget=RunBudget(memory_limit_bytes=1),
        )
        assert run.status is RunStatus.OUT_OF_MEMORY


class TestMonotonicity:
    @pytest.mark.parametrize("channels", [2, 5, 10, 20])
    def test_simulated_time_monotone_in_reduced_channels(self, channels):
        info = dataset_info("Heartbeat")
        runs = [
            simulate_finetuning("moment-large", info, adapter="lcomb", reduced_channels=c)
            for c in (channels, channels + 1)
        ]
        assert runs[0].seconds < runs[1].seconds
        assert runs[0].peak_memory_bytes <= runs[1].peak_memory_bytes

    def test_more_epochs_cost_more_time_not_memory(self):
        info = dataset_info("NATOPS")
        short = simulate_finetuning("moment-large", info, adapter="lcomb", epochs=10)
        long = simulate_finetuning("moment-large", info, adapter="lcomb", epochs=200)
        assert long.seconds > short.seconds
        assert long.peak_memory_bytes == short.peak_memory_bytes

    def test_extension_adapters_priced_like_fit_once(self):
        info = dataset_info("Heartbeat")
        for adapter in ("lda", "cluster_avg", "scaled_pca", "patch_pca"):
            run = simulate_finetuning("moment-large", info, adapter=adapter)
            assert run.ok, adapter


class TestSpecImmutability:
    def test_gpu_spec_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            V100_32GB.throughput_flops = 1.0

    def test_default_budget_matches_paper(self):
        assert DEFAULT_BUDGET.time_limit_s == 2 * 3600
