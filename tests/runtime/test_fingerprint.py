"""Tests for content fingerprints (repro.runtime.fingerprint)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.models import build_model
from repro.runtime import (
    combine_fingerprints,
    fingerprint_adapter,
    fingerprint_array,
    fingerprint_config,
    fingerprint_config_fields,
    fingerprint_model,
    fingerprint_state_dict,
)
from repro.training import TrainConfig


class TestArrayFingerprint:
    def test_content_not_identity(self, rng):
        x = rng.normal(size=(4, 5))
        assert fingerprint_array(x) == fingerprint_array(x.copy())

    def test_mutation_changes_fingerprint(self, rng):
        x = rng.normal(size=(4, 5))
        before = fingerprint_array(x)
        x[0, 0] += 1.0
        assert fingerprint_array(x) != before

    def test_shape_distinguished(self):
        x = np.arange(6.0)
        assert fingerprint_array(x.reshape(2, 3)) != fingerprint_array(x.reshape(3, 2))

    def test_dtype_distinguished(self):
        assert fingerprint_array(np.zeros(4, dtype=np.int8)) != fingerprint_array(
            np.zeros(4, dtype=np.uint8)
        )

    def test_noncontiguous_equals_contiguous(self, rng):
        x = rng.normal(size=(6, 6))
        view = x[::2, ::2]
        assert fingerprint_array(view) == fingerprint_array(np.ascontiguousarray(view))


class TestStateDictFingerprint:
    def test_order_insensitive(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(3,))
        assert fingerprint_state_dict({"w": a, "b": b}) == fingerprint_state_dict(
            {"b": b, "w": a}
        )

    def test_name_sensitive(self, rng):
        a = rng.normal(size=(2, 2))
        assert fingerprint_state_dict({"w": a}) != fingerprint_state_dict({"v": a})


class TestModelFingerprint:
    def test_same_build_same_fingerprint(self):
        assert (
            fingerprint_model(build_model("moment-tiny", seed=0))
            == build_model("moment-tiny", seed=0).fingerprint()
        )

    def test_seed_changes_fingerprint(self):
        assert build_model("moment-tiny", seed=0).fingerprint() != build_model(
            "moment-tiny", seed=1
        ).fingerprint()

    def test_weight_mutation_changes_fingerprint(self):
        model = build_model("moment-tiny", seed=0)
        before = model.fingerprint()
        next(iter(model.parameters())).data += 1.0
        assert model.fingerprint() != before


class TestAdapterFingerprint:
    def test_fitted_on_different_data_differs(self, rng):
        x1 = rng.normal(size=(8, 16, 6))
        x2 = rng.normal(size=(8, 16, 6))
        a1 = make_adapter("pca", 3).fit(x1)
        a2 = make_adapter("pca", 3).fit(x2)
        assert fingerprint_adapter(a1) != fingerprint_adapter(a2)

    def test_seed_differs(self, rng):
        x = rng.normal(size=(8, 16, 6))
        a1 = make_adapter("rand_proj", 3, seed=0).fit(x)
        a2 = make_adapter("rand_proj", 3, seed=1).fit(x)
        assert fingerprint_adapter(a1) != fingerprint_adapter(a2)

    def test_adapter_kind_differs(self, rng):
        x = rng.normal(size=(8, 16, 6))
        a1 = make_adapter("pca", 3).fit(x)
        a2 = make_adapter("svd", 3).fit(x)
        assert fingerprint_adapter(a1) != fingerprint_adapter(a2)

    def test_trainable_adapter_weights_fingerprinted(self, rng):
        x = rng.normal(size=(8, 16, 6))
        adapter = make_adapter("lcomb", 3, seed=0).fit(x)
        before = fingerprint_adapter(adapter)
        adapter.module.weight.data += 0.5
        assert fingerprint_adapter(adapter) != before


class TestConfigFingerprint:
    def test_equal_configs_equal(self):
        assert fingerprint_config(TrainConfig(epochs=5)) == fingerprint_config(
            TrainConfig(epochs=5)
        )

    def test_field_change_differs(self):
        assert fingerprint_config(TrainConfig(epochs=5)) != fingerprint_config(
            TrainConfig(epochs=6)
        )

    def test_field_subset_ignores_excluded(self):
        a = fingerprint_config_fields(TrainConfig(epochs=5, seed=0), ("epochs",))
        b = fingerprint_config_fields(TrainConfig(epochs=5, seed=9), ("epochs",))
        assert a == b

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            fingerprint_config({"epochs": 5})


class TestCombine:
    def test_boundary_safe(self):
        assert combine_fingerprints("ab", "c") != combine_fingerprints("a", "bc")

    def test_order_sensitive(self):
        assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
