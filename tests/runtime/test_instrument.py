"""Tests for span timers and counters (repro.runtime.instrument)."""

from __future__ import annotations

import time

from repro.runtime import Instrumentation, RunSummary, Stopwatch


class TestStopwatch:
    def test_elapsed_monotone(self):
        watch = Stopwatch()
        first = watch.elapsed()
        time.sleep(0.01)
        assert watch.elapsed() > first >= 0.0

    def test_restart_returns_interval(self):
        watch = Stopwatch()
        time.sleep(0.01)
        interval = watch.restart()
        assert interval >= 0.01
        assert watch.elapsed() < interval


class TestInstrumentation:
    def test_spans_accumulate(self):
        inst = Instrumentation()
        for _ in range(2):
            with inst.span("phase"):
                time.sleep(0.005)
        assert inst.seconds("phase") >= 0.01
        assert inst.seconds("unknown") == 0.0

    def test_span_records_on_exception(self):
        inst = Instrumentation()
        try:
            with inst.span("phase"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert inst.seconds("phase") > 0.0

    def test_counters(self):
        inst = Instrumentation()
        inst.count("hits")
        inst.count("hits", 2)
        assert inst.counter("hits") == 3
        assert inst.counter("misses") == 0

    def test_summary_snapshot_and_reset(self):
        inst = Instrumentation()
        inst.add_seconds("phase", 1.5)
        inst.count("events", 4)
        summary = inst.summary()
        inst.reset()
        assert summary.phase_seconds == {"phase": 1.5}
        assert summary.counters == {"events": 4}
        assert inst.summary().phase_seconds == {}


class TestRunSummary:
    def test_dict_round_trip(self):
        summary = RunSummary(phase_seconds={"a": 0.5}, counters={"hits": 3})
        assert RunSummary.from_dict(summary.to_dict()) == summary

    def test_from_dict_tolerates_missing_keys(self):
        summary = RunSummary.from_dict({})
        assert summary.phase_seconds == {}
        assert summary.counters == {}
