"""Tests for the two-tier artifact store (repro.runtime.store)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime.store as store_module
from repro.runtime import ArtifactStore


def key(digest: str = "deadbeef00", namespace: str = "result") -> str:
    return f"{namespace}/{digest}"


class TestMemoryTier:
    def test_miss_then_hit(self, rng):
        store = ArtifactStore()
        assert store.get(key()) is None
        store.put(key(), arrays={"x": rng.normal(size=(3,))}, meta={"a": 1})
        artifact = store.get(key())
        assert artifact.meta == {"a": 1}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1

    def test_hit_returns_stored_object(self, rng):
        store = ArtifactStore()
        x = rng.normal(size=(4,))
        store.put(key(), arrays={"x": x})
        assert store.get(key()).arrays["x"] is x

    def test_lru_eviction(self, rng):
        store = ArtifactStore(max_memory_entries=2)
        for i in range(3):
            store.put(key(f"{i:08x}"), arrays={"x": rng.normal(size=(2,))})
        assert len(store) == 2
        assert store.stats.evictions == 1
        # the oldest entry (0) was evicted; 1 and 2 remain
        assert store.get(key("00000000")) is None
        assert store.get(key("00000001")) is not None

    def test_lru_touch_on_get(self, rng):
        store = ArtifactStore(max_memory_entries=2)
        store.put(key("00000000"), arrays={"x": rng.normal(size=(2,))})
        store.put(key("00000001"), arrays={"x": rng.normal(size=(2,))})
        store.get(key("00000000"))  # refresh 0; 1 becomes LRU
        store.put(key("00000002"), arrays={"x": rng.normal(size=(2,))})
        assert store.get(key("00000000")) is not None
        assert store.get(key("00000001")) is None

    def test_malformed_key_rejected(self):
        store = ArtifactStore()
        for bad in ("no-slash", "UPPER/abc123", "ns/nothex!", "ns/sub/abc123ff"):
            with pytest.raises(ValueError):
                store.get(bad)

    def test_reserved_array_name_rejected(self, rng):
        store = ArtifactStore()
        with pytest.raises(ValueError):
            store.put(key(), arrays={"__artifact_meta__": rng.normal(size=(2,))})


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path, rng):
        x = rng.normal(size=(4, 3))
        ArtifactStore(tmp_path).put(key(), arrays={"x": x}, meta={"kind": "test"})
        fresh = ArtifactStore(tmp_path)
        artifact = fresh.get(key())
        np.testing.assert_array_equal(artifact.arrays["x"], x)
        assert artifact.meta == {"kind": "test"}
        assert fresh.stats.hits == 1

    def test_disk_layout_is_namespaced(self, tmp_path, rng):
        store = ArtifactStore(tmp_path)
        store.put(key(namespace="embedding"), arrays={"x": rng.normal(size=(2,))})
        assert (tmp_path / "embedding" / "deadbeef00.npz").exists()

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path, rng):
        store = ArtifactStore(tmp_path)
        store.put(key(), arrays={"x": rng.normal(size=(2,))})
        path = tmp_path / "result" / "deadbeef00.npz"
        path.write_bytes(b"not an npz archive at all")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(key()) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, rng, monkeypatch):
        ArtifactStore(tmp_path).put(key(), arrays={"x": rng.normal(size=(2,))})
        monkeypatch.setattr(store_module, "STORE_VERSION", 999)
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(key()) is None
        assert fresh.stats.corrupt == 1

    def test_clear_namespace(self, tmp_path, rng):
        store = ArtifactStore(tmp_path)
        store.put(key(namespace="embedding"), arrays={"x": rng.normal(size=(2,))})
        store.put(key(namespace="pretrain"), arrays={"x": rng.normal(size=(2,))})
        removed = store.clear(namespace="embedding")
        assert removed == 2  # memory + disk copy
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(key(namespace="embedding")) is None
        assert fresh.get(key(namespace="pretrain")) is not None

    def test_disk_summary(self, tmp_path, rng):
        store = ArtifactStore(tmp_path)
        store.put(key(namespace="embedding"), arrays={"x": rng.normal(size=(8,))})
        store.put(key(namespace="result"), meta={"accuracy": 0.5})
        summary = store.disk_summary()
        assert summary["embedding"]["entries"] == 1
        assert summary["result"]["entries"] == 1
        assert summary["embedding"]["bytes"] > 0

    def test_contains_does_not_touch_counters(self, tmp_path, rng):
        store = ArtifactStore(tmp_path)
        store.put(key(), arrays={"x": rng.normal(size=(2,))})
        fresh = ArtifactStore(tmp_path)
        assert fresh.contains(key())
        assert not fresh.contains(key("ffffffff"))
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == 0


class TestTornWrites:
    """Crash-safety of the disk tier: a write killed mid-flight must
    leave either the previous entry or the new one — never a torn file
    (the corruption counter stays 0 across the crash)."""

    def test_crash_before_rename_preserves_previous_entry(self, tmp_path, rng, monkeypatch):
        store = ArtifactStore(tmp_path)
        old = rng.normal(size=(4,))
        store.put(key(), arrays={"x": old}, meta={"gen": 1})

        def crash(src, dst):
            raise OSError("simulated kill between write and rename")

        monkeypatch.setattr(store_module.os, "replace", crash)
        writer = ArtifactStore(tmp_path)
        with pytest.raises(OSError):
            writer.put(key(), arrays={"x": rng.normal(size=(4,))}, meta={"gen": 2})
        monkeypatch.undo()

        fresh = ArtifactStore(tmp_path)
        artifact = fresh.get(key())
        assert artifact is not None and artifact.meta == {"gen": 1}
        np.testing.assert_array_equal(artifact.arrays["x"], old)
        assert fresh.stats.corrupt == 0

    def test_crash_leaves_no_temp_garbage_visible_to_readers(self, tmp_path, rng, monkeypatch):
        def crash(src, dst):
            raise OSError("simulated kill")

        monkeypatch.setattr(store_module.os, "replace", crash)
        writer = ArtifactStore(tmp_path)
        with pytest.raises(OSError):
            writer.put(key(), arrays={"x": rng.normal(size=(2,))})
        monkeypatch.undo()

        fresh = ArtifactStore(tmp_path)
        assert fresh.get(key()) is None
        assert fresh.stats.corrupt == 0  # a miss, not a torn read
        assert fresh.disk_summary() == {}

    def test_atomic_write_bytes_crash_keeps_old_content(self, tmp_path, monkeypatch):
        from repro.runtime import atomic_write_bytes

        path = tmp_path / "journal" / "entry.json"
        atomic_write_bytes(path, b'{"state": "old"}')

        def crash(src, dst):
            raise OSError("simulated kill")

        monkeypatch.setattr(store_module.os, "replace", crash)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b'{"state": "new"}')
        monkeypatch.undo()

        assert path.read_bytes() == b'{"state": "old"}'
        assert list(path.parent.glob("*.tmp")) == []

    def test_atomic_write_bytes_round_trip(self, tmp_path):
        from repro.runtime import atomic_write_bytes

        path = tmp_path / "nested" / "dir" / "payload.json"
        atomic_write_bytes(path, b"abc")
        atomic_write_bytes(path, b"abcdef")  # overwrite in place
        assert path.read_bytes() == b"abcdef"
