"""The redesigned predict-facing public API.

Covers the satellite work of the serve PR: the :class:`FittedPipeline`
handle, ``deploy`` / ``client`` from the package root, consistent
``batch_size`` / ``compiled`` kwargs, typed ``run_experiment``
signature, and the deprecation shims over the old entry points.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import FittedPipeline, ServeConfig, client, deploy, fit_pipeline, undeploy
from repro.serve import PipelineNotFoundError
from repro.training import TrainConfig


@pytest.fixture(scope="module")
def fitted():
    return fit_pipeline(
        "JapaneseVowels",
        adapter="pca",
        channels=4,
        seed=0,
        scale=0.1,
        max_length=32,
        train_config=TrainConfig(epochs=2, batch_size=16, seed=0),
    )


class TestFittedPipelineHandle:
    def test_unpacks_as_pipeline_dataset_pair(self, fitted):
        pipeline, dataset = fitted
        assert pipeline is fitted.pipeline
        assert dataset is fitted.dataset

    def test_predict_surface_delegates(self, fitted):
        x = fitted.dataset.x_test[:5]
        np.testing.assert_array_equal(
            fitted.predict_logits(x, batch_size=8),
            fitted.pipeline.predict_logits(x, batch_size=8),
        )
        assert fitted.predict(x).shape == (5,)
        proba = fitted.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_report_property(self, fitted):
        assert fitted.report is not None
        assert fitted.report.total_s >= 0

    def test_save_publishes_to_registry(self, fitted, tmp_path):
        from repro.serve import PipelineRegistry
        from repro.training import AdapterPipeline

        record = fitted.save(tmp_path / "reg", "vowels")
        assert record.ref == "vowels@v1"
        restored = AdapterPipeline.load(tmp_path / "reg", "vowels")
        x = fitted.dataset.x_test[:4]
        np.testing.assert_array_equal(
            restored.predict_logits(x), fitted.predict_logits(x)
        )
        assert PipelineRegistry(tmp_path / "reg").names() == ["vowels"]


class TestDeployClient:
    def test_deploy_then_client_predict(self, fitted):
        x = fitted.dataset.x_test[:4]
        config = ServeConfig(max_batch=4, max_delay_s=0.001)
        record = deploy(fitted.pipeline, "api-vowels", config=config)
        try:
            assert record.version == 1
            handle = client("api-vowels")
            np.testing.assert_array_equal(
                handle.predict_logits(x),
                fitted.predict_logits(x, batch_size=4),
            )
            # Matching kwargs pass; conflicting kwargs raise.
            handle.predict(x[0], batch_size=4, compiled=True)
            with pytest.raises(ValueError, match="batch_size"):
                handle.predict(x[0], batch_size=32)
            with pytest.raises(ValueError, match="compiled"):
                handle.predict(x[0], compiled=False)
        finally:
            assert undeploy("api-vowels") is True

    def test_redeploy_bumps_version_and_swaps(self, fitted):
        try:
            first = deploy(fitted.pipeline, "api-swap")
            second = fitted.deploy("api-swap")
            assert (first.version, second.version) == (1, 2)
            assert client("api-swap").server.record.version == 2
        finally:
            undeploy("api-swap")

    def test_client_without_deploy_is_typed_error(self):
        with pytest.raises(PipelineNotFoundError):
            client("never-deployed")

    def test_undeploy_missing_returns_false(self):
        assert undeploy("never-deployed") is False

    def test_root_exports(self):
        for name in ("fit_pipeline", "FittedPipeline", "deploy", "client",
                     "undeploy", "ServeConfig", "serve"):
            assert hasattr(repro, name)
        assert isinstance(fit_pipeline("JapaneseVowels", scale=0.05, max_length=16,
                                       train_config=TrainConfig(epochs=1, seed=0)),
                          FittedPipeline)


class TestRunExperimentSignature:
    def test_unknown_kwarg_is_helpful_typeerror(self):
        from repro import JobSpec, run_experiment

        spec = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca")
        with pytest.raises(TypeError, match="cache_path.*valid keywords"):
            run_experiment(spec, cache_path="/tmp/x")

    def test_config_type_checked(self):
        from repro import JobSpec, run_experiment

        spec = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca")
        with pytest.raises(TypeError, match="ExperimentConfig"):
            run_experiment(spec, config="fast")

    def test_runner_type_checked(self):
        from repro import JobSpec, run_experiment

        spec = JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca")
        with pytest.raises(TypeError, match="ExperimentRunner"):
            run_experiment(spec, runner=object())


class TestDeprecationShims:
    def test_save_load_pipeline_warn_but_work(self, fitted, tmp_path):
        from repro.training import load_pipeline, save_pipeline

        with pytest.warns(DeprecationWarning, match="save"):
            path = save_pipeline(fitted.pipeline, tmp_path / "ckpt")
        with pytest.warns(DeprecationWarning, match="load"):
            restored = load_pipeline(path)
        x = fitted.dataset.x_test[:4]
        np.testing.assert_array_equal(
            restored.predict_logits(x), fitted.predict_logits(x)
        )
