"""PipelineRegistry: publish / load round-trips, versioning, integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import build_model
from repro.runtime import ArtifactStore
from repro.serve import (
    PipelineNotFoundError,
    PipelineRegistry,
    RegistryIntegrityError,
)
from repro.training import AdapterPipeline, TrainConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("JapaneseVowels", seed=0, scale=0.1, max_length=32, normalize=False)


@pytest.fixture(scope="module")
def pipeline(dataset):
    model = build_model("moment-tiny", seed=0)
    model.eval()
    pipe = AdapterPipeline(model, make_adapter("pca", 4, seed=0), dataset.num_classes, seed=0)
    pipe.fit(dataset.x_train, dataset.y_train,
             config=TrainConfig(epochs=2, batch_size=16, seed=0))
    return pipe


class TestPublishLoad:
    def test_round_trip_bit_identical(self, tmp_path, dataset, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        record = registry.publish(pipeline, "vowels")
        assert record.name == "vowels"
        assert record.version == 1
        assert record.ref == "vowels@v1"
        restored = registry.load("vowels")
        np.testing.assert_array_equal(
            pipeline.predict_logits(dataset.x_test),
            restored.predict_logits(dataset.x_test),
        )

    def test_memory_store_round_trip(self, dataset, pipeline):
        registry = PipelineRegistry(ArtifactStore(max_memory_entries=8))
        registry.publish(pipeline, "vowels")
        restored = registry.load("vowels")
        np.testing.assert_array_equal(
            pipeline.predict_logits(dataset.x_test[:4]),
            restored.predict_logits(dataset.x_test[:4]),
        )

    def test_versions_are_immutable_and_monotonic(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        first = registry.publish(pipeline, "p")
        second = registry.publish(pipeline, "p")
        assert (first.version, second.version) == (1, 2)
        assert registry.record("p").version == 2          # latest by default
        assert registry.record("p", version=1).digest == first.digest
        assert registry.versions("p") == [1, 2]

    def test_names_are_isolated(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        registry.publish(pipeline, "a")
        registry.publish(pipeline, "b")
        assert registry.names() == ["a", "b"]
        assert registry.record("a").version == 1

    def test_load_is_cached_hot(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg", max_hot=2)
        registry.publish(pipeline, "p")
        assert registry.load("p") is registry.load("p")

    def test_bad_name_rejected(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        with pytest.raises(ValueError, match="name"):
            registry.publish(pipeline, "bad/name")

    def test_unfitted_pipeline_rejected(self, tmp_path, dataset):
        model = build_model("moment-tiny", seed=0)
        pipe = AdapterPipeline(model, make_adapter("pca", 4), dataset.num_classes)
        registry = PipelineRegistry(tmp_path / "reg")
        with pytest.raises(ValueError):
            registry.publish(pipe, "nope")


class TestFailureModes:
    def test_unknown_name(self, tmp_path):
        registry = PipelineRegistry(tmp_path / "reg")
        with pytest.raises(PipelineNotFoundError):
            registry.load("ghost")

    def test_unknown_version(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        registry.publish(pipeline, "p")
        with pytest.raises(PipelineNotFoundError):
            registry.load("p", version=7)

    def test_corrupt_payload_is_a_hard_error(self, tmp_path, pipeline):
        registry = PipelineRegistry(tmp_path / "reg")
        record = registry.publish(pipeline, "p")
        # Flip bits in the stored npz payload on disk.
        payloads = sorted((tmp_path / "reg" / "pipeline").glob("*.npz"))
        assert payloads, "expected the published payload on disk"
        for path in payloads:
            raw = bytearray(path.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            path.write_bytes(bytes(raw))
        fresh = PipelineRegistry(tmp_path / "reg")  # no hot cache
        with pytest.raises((RegistryIntegrityError, PipelineNotFoundError)):
            fresh.load("p", version=record.version)
