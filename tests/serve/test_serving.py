"""End-to-end serving: micro-batching, bit-identity, saturation errors."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceededError,
    PipelineRegistry,
    PipelineServer,
    QueueFullError,
    ServeConfig,
    ServerClosedError,
)
from repro.training import TrainConfig


@pytest.fixture(scope="module")
def fitted():
    from repro import fit_pipeline

    return fit_pipeline(
        "JapaneseVowels",
        adapter="pca",
        channels=4,
        seed=0,
        scale=0.1,
        max_length=32,
        train_config=TrainConfig(epochs=2, batch_size=16, seed=0),
    )


@pytest.fixture(scope="module")
def registry(fitted, tmp_path_factory):
    registry = PipelineRegistry(tmp_path_factory.mktemp("serve-registry"))
    registry.publish(fitted.pipeline, "vowels")
    return registry


class TestBitIdentity:
    def test_concurrent_requests_match_offline_recipe(self, fitted, registry):
        """The tentpole contract: served logits are bit-identical to
        ``predict_logits(x, batch_size=max_batch)`` offline, no matter
        how requests were packed into micro-batches."""
        config = ServeConfig(max_batch=8, max_delay_s=0.002)
        x = fitted.dataset.x_test[:24]
        offline = fitted.pipeline.predict_logits(x, batch_size=config.max_batch)

        results: list[np.ndarray | None] = [None] * len(x)
        with PipelineServer(registry, "vowels", config=config) as server:
            server.warmup(x.shape[1])

            def one(i: int) -> None:
                results[i] = server.predict_logits(x[i])

            threads = [threading.Thread(target=one, args=(i,)) for i in range(len(x))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()

        np.testing.assert_array_equal(np.stack(results, axis=0), offline)
        # Concurrent submitters actually shared batches.
        width = stats["batcher"]["batch_width"]
        assert width["max"] > 1
        assert stats["batcher"]["requests"] >= len(x)

    def test_single_vs_array_submission_identical(self, fitted, registry):
        config = ServeConfig(max_batch=4, max_delay_s=0.001)
        x = fitted.dataset.x_test[:6]
        with PipelineServer(registry, "vowels", config=config) as server:
            rows = np.stack([server.predict_logits(series) for series in x], axis=0)
            batched = server.predict_logits(x)
        np.testing.assert_array_equal(rows, batched)
        np.testing.assert_array_equal(
            rows, fitted.pipeline.predict_logits(x, batch_size=4)
        )

    def test_predict_and_proba_shapes(self, fitted, registry):
        x = fitted.dataset.x_test[:3]
        with PipelineServer(registry, "vowels") as server:
            labels = server.predict(x)
            proba = server.predict_proba(x)
        assert labels.shape == (3,)
        assert proba.shape == (3, fitted.dataset.num_classes)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)


class TestSaturation:
    def test_queue_full_sheds_with_typed_error(self, fitted, registry):
        config = ServeConfig(max_batch=2, max_delay_s=0.05, queue_depth=2)
        x = fitted.dataset.x_test[0]
        with PipelineServer(registry, "vowels", config=config) as server:
            futures, shed = [], 0
            for _ in range(50):
                try:
                    futures.append(server.submit(x))
                except QueueFullError:
                    shed += 1
            for future in futures:
                future.result()
            stats = server.stats()
        assert shed > 0
        assert stats["batcher"]["rejected_queue_full"] == shed

    def test_deadline_exceeded_is_typed(self, fitted, registry):
        # A deadline far shorter than the batching window: the request
        # expires while waiting for co-batchees that never come.
        config = ServeConfig(max_batch=64, max_delay_s=0.5)
        x = fitted.dataset.x_test[0]
        with PipelineServer(registry, "vowels", config=config) as server:
            future = server.submit(x, deadline_s=0.01)
            with pytest.raises(DeadlineExceededError):
                future.result()
            stats = server.stats()
        assert stats["batcher"]["rejected_deadline"] >= 1

    def test_closed_server_rejects(self, fitted, registry):
        server = PipelineServer(registry, "vowels")
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(fitted.dataset.x_test[0])

    def test_submit_rejects_wrong_rank(self, fitted, registry):
        with PipelineServer(registry, "vowels") as server:
            with pytest.raises(ValueError, match=r"\(T, D\)"):
                server.submit(fitted.dataset.x_test[:2])


class TestObservability:
    def test_stats_snapshot_shape(self, fitted, registry):
        with PipelineServer(registry, "vowels") as server:
            server.predict(fitted.dataset.x_test[0])
            stats = server.stats()
        assert stats["pipeline"]["name"] == "vowels"
        assert stats["config"]["max_batch"] == ServeConfig().max_batch
        assert stats["batcher"]["requests"] == 1
        assert "latency_s" in stats["batcher"]
        assert set(stats["phases_s"]) >= {"adapter", "encode", "head"}

    def test_serve_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(max_delay_s=-1.0)
