"""Streaming sessions over a running server: concurrency + faults.

Sessions submit completed windows as ordinary requests, so the
contract mirrors the serving tentpole: no matter how many sessions
interleave, how their pushes race, or whether a worker is SIGKILLed
mid-stream, every session's predictions are bit-identical to a serial
offline replay of its own windows.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.exec.chaos import CHAOS_ENV, ChaosPlan, plans_to_env
from repro.serve import PipelineRegistry, PipelineServer, ServeConfig
from repro.stream import StreamSessionClosedError, WindowGeometryError
from repro.stream.windows import window_batch, window_starts
from repro.training import TrainConfig

WINDOW = 16
STRIDE = 8


@pytest.fixture(scope="module")
def fitted():
    from repro import fit_pipeline

    return fit_pipeline(
        "JapaneseVowels",
        adapter="pca",
        channels=4,
        seed=0,
        scale=0.1,
        max_length=32,
        train_config=TrainConfig(epochs=2, batch_size=16, seed=0),
    )


@pytest.fixture(scope="module")
def registry(fitted, tmp_path_factory):
    registry = PipelineRegistry(tmp_path_factory.mktemp("stream-registry"))
    registry.publish(fitted.pipeline, "vowels")
    return registry


def _stream_series(seed: int, length: int = 72) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(length, 12))


def _offline(fitted, x: np.ndarray, batch_size: int) -> np.ndarray:
    starts = window_starts(len(x), WINDOW, STRIDE)
    return fitted.pipeline.predict_logits(
        window_batch(x, starts, WINDOW), batch_size=batch_size
    )


class TestSessionSurface:
    def test_one_session_matches_offline_replay(self, fitted, registry):
        config = ServeConfig(max_batch=8, max_delay_s=0.002)
        x = _stream_series(0)
        with PipelineServer(registry, "vowels", config=config) as server:
            with server.open_stream(WINDOW, STRIDE) as session:
                for sample in x:
                    session.push(sample)
                predictions = session.results()
        offline = _offline(fitted, x, config.max_batch)
        np.testing.assert_array_equal(
            np.stack([p.logits for p in predictions], axis=0), offline
        )
        assert [p.window_index for p in predictions] == list(range(len(offline)))

    def test_bad_geometry_and_closed_session_are_typed(self, registry):
        config = ServeConfig(max_batch=4, max_delay_s=0.001)
        with PipelineServer(registry, "vowels", config=config) as server:
            with pytest.raises(WindowGeometryError):
                server.open_stream(8, 9)
            session = server.open_stream(WINDOW, STRIDE)
            session.push(_stream_series(1)[:4])
            session.close()
            with pytest.raises(StreamSessionClosedError):
                session.push(np.zeros(12))
            # Idempotent: a second close returns the same predictions.
            assert session.close() is session.predictions

    def test_server_stats_track_sessions(self, registry):
        config = ServeConfig(max_batch=4, max_delay_s=0.001)
        x = _stream_series(2, length=40)
        with PipelineServer(registry, "vowels", config=config) as server:
            session = server.open_stream(WINDOW, STRIDE)
            session.push(x)
            mid = server.stats()["streams"]
            assert mid["open"] == 1 and mid["opened"] == 1
            assert mid["windows_submitted"] == len(window_starts(len(x), WINDOW, STRIDE))
            session.close()
            assert server.stats()["streams"]["open"] == 0


class TestConcurrentSessions:
    def test_interleaved_sessions_are_each_bit_identical_to_serial(
        self, fitted, registry
    ):
        """3 sessions, 3 threads, racing pushes through one batcher:
        cross-session micro-batching must never leak between streams."""
        config = ServeConfig(max_batch=8, max_delay_s=0.005)
        streams = {i: _stream_series(10 + i) for i in range(3)}
        with PipelineServer(registry, "vowels", config=config) as server:
            server.warmup(WINDOW)
            sessions = {i: server.open_stream(WINDOW, STRIDE) for i in streams}
            barrier = threading.Barrier(len(streams))

            def feed(i: int) -> None:
                barrier.wait()
                x = streams[i]
                for lo in range(0, len(x), 5):  # ragged chunks interleave
                    sessions[i].push(x[lo : lo + 5])

            threads = [
                threading.Thread(target=feed, args=(i,)) for i in streams
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            collected = {i: sessions[i].close() for i in streams}
            stats = server.stats()

        for i, x in streams.items():
            offline = _offline(fitted, x, config.max_batch)
            np.testing.assert_array_equal(
                np.stack([p.logits for p in collected[i]], axis=0), offline
            )
        assert stats["streams"]["opened"] == 3
        # The point of routing streams through the shared batcher:
        # windows from different sessions actually co-batched.
        assert stats["batcher"]["batch_width"]["max"] > 1

    def test_server_close_drains_open_sessions(self, fitted, registry):
        config = ServeConfig(max_batch=4, max_delay_s=0.001)
        x = _stream_series(3, length=48)
        server = PipelineServer(registry, "vowels", config=config)
        session = server.open_stream(WINDOW, STRIDE)
        session.push(x)
        assert session.pending > 0
        server.close()  # drain=True default: resolves the session first
        offline = _offline(fitted, x, config.max_batch)
        np.testing.assert_array_equal(
            np.stack([p.logits for p in session.predictions], axis=0), offline
        )


class TestWorkerCrashMidStream:
    @pytest.mark.slow
    def test_sessions_survive_sigkilled_worker(self, fitted, registry):
        """A pool worker is SIGKILLed every 3rd batch it touches
        (inherited ``REPRO_CHAOS`` plan); the pool resubmits in-flight
        windows and respawns, and the stream's final predictions are
        still bit-identical to the serial offline replay."""
        x = _stream_series(99, length=48)  # 5 windows
        os.environ[CHAOS_ENV] = plans_to_env(
            [ChaosPlan(kind="kill", site="serve.predict", after=3)]
        )
        try:
            # max_batch=1 keeps every window its own batch, so the kill
            # point is actually reached across worker incarnations.
            config = ServeConfig(max_batch=1, max_delay_s=0.0, workers=1)
            with PipelineServer(registry, "vowels", config=config) as server:
                session = server.open_stream(WINDOW, STRIDE)
                for lo in range(0, len(x), 7):
                    session.push(x[lo : lo + 7])
                predictions = session.close(timeout=180.0)
                stats = server.stats()
        finally:
            del os.environ[CHAOS_ENV]

        offline = _offline(fitted, x, batch_size=1)
        assert len(predictions) == len(offline) == 5
        np.testing.assert_array_equal(
            np.stack([p.logits for p in predictions], axis=0), offline
        )
        # The fault actually fired: at least one respawned worker.
        assert stats["pool"]["respawns"] >= 1
