"""Shared fixtures for the streaming tests.

Fitting a pipeline dominates test wall-clock, so the two fitted
pipelines (fit-once PCA adapter, trainable lcomb adapter) are built
once per package and shared read-mostly; tests that mutate weights
(``partial_fit``) say so and restore nothing — they run against the
lcomb pipeline whose exact weights no other assertion depends on.
"""

from __future__ import annotations

import pytest

from repro.training import TrainConfig


@pytest.fixture(scope="package")
def fitted():
    """JapaneseVowels surrogate (D=12, 9 classes) + PCA adapter."""
    from repro import fit_pipeline

    return fit_pipeline(
        "JapaneseVowels",
        adapter="pca",
        channels=4,
        seed=0,
        scale=0.1,
        max_length=32,
        train_config=TrainConfig(epochs=2, batch_size=16, seed=0),
    )


@pytest.fixture(scope="package")
def fitted_lcomb():
    """Same surrogate with the trainable linear-combiner adapter."""
    from repro import fit_pipeline

    return fit_pipeline(
        "JapaneseVowels",
        adapter="lcomb",
        channels=4,
        seed=0,
        scale=0.05,
        max_length=32,
        train_config=TrainConfig(epochs=1, batch_size=16, seed=0),
    )
