"""StreamingClassifier behaviour: buffering, typed errors, feedback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.models import load_pretrained
from repro.stream import ChannelMismatchError, StreamError, StreamingClassifier
from repro.training import AdapterPipeline


@pytest.fixture()
def stream_data(rng):
    return rng.normal(size=(120, 12))


class TestPushSurface:
    def test_buffers_until_first_window_completes(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8, batch_size=4)
        assert stream.push(stream_data[:15]) is None
        assert stream.windows_emitted == 0
        prediction = stream.push(stream_data[15])
        assert prediction is not None
        assert prediction.window_index == 0
        assert (prediction.start, prediction.end) == (0, 16)
        assert stream.samples_pushed == 16

    def test_prediction_fields_are_consistent(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8, batch_size=4)
        stream.push(stream_data[:40])
        for prediction in stream.emitted:
            assert prediction.label == int(np.argmax(prediction.logits))
            assert prediction.proba.shape == prediction.logits.shape
            np.testing.assert_allclose(prediction.proba.sum(), 1.0, rtol=1e-6)
            assert prediction.end - prediction.start == 16

    def test_emits_every_window_in_stream_order(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8, batch_size=4)
        stream.push(stream_data)
        # (120 - 16) // 8 + 1 complete windows, indexed 0..n-1 in order.
        assert stream.windows_emitted == 14
        assert [p.window_index for p in stream.emitted] == list(range(14))
        assert [p.start for p in stream.emitted] == [8 * i for i in range(14)]

    def test_channel_mismatch_is_typed(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8)
        stream.push(stream_data[:4])
        with pytest.raises(ChannelMismatchError):
            stream.push(np.zeros((3, 7)))

    def test_bad_rank_rejected(self, fitted):
        stream = StreamingClassifier(fitted, window=16, stride=8)
        with pytest.raises(ValueError, match="chunk"):
            stream.push(np.zeros((2, 3, 12)))

    def test_unfitted_pipeline_rejected(self):
        pipeline = AdapterPipeline(
            load_pretrained("moment-tiny", seed=0), make_adapter("none"), 3, seed=0
        )
        with pytest.raises(StreamError, match="fitted"):
            StreamingClassifier(pipeline, window=16, stride=8)


class TestCacheEconomy:
    def test_repeated_content_is_never_re_encoded(self, fitted, rng):
        stream = StreamingClassifier(fitted, window=16, stride=16, batch_size=4)
        motif = rng.normal(size=(16, 12))
        first = stream.push(motif)
        second = stream.push(motif.copy())  # same bits, later in the stream
        stats = stream.stats()["cache"]
        assert stats["encoded_windows"] == 1
        assert stats["hits"] == 1
        np.testing.assert_array_equal(first.logits, second.logits)
        assert first.window_index != second.window_index

    def test_reset_forgets_stream_but_keeps_cache_warm(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8, batch_size=4)
        stream.push(stream_data)
        encoded_before = stream.cache.encoded_windows
        before = [p.logits for p in stream.emitted]

        stream.reset()
        assert stream.windows_emitted == 0 and stream.samples_pushed == 0
        stream.push(stream_data)
        after = [p.logits for p in stream.emitted]
        # Replaying the identical stream is pure cache hits...
        assert stream.cache.encoded_windows == encoded_before
        # ...and bit-identical output.
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_stats_shape(self, fitted, stream_data):
        stream = StreamingClassifier(fitted, window=16, stride=8, batch_size=4)
        stream.push(stream_data[:50])
        stats = stream.stats()
        assert stats["window"] == 16 and stats["stride"] == 8
        assert stats["samples"] == 50
        assert stats["windows"] == len(stream.emitted)
        assert set(stats["cache"]) == {"hits", "misses", "encoded_windows", "entries"}
        assert "window=16" in repr(stream)


class TestPartialFit:
    def test_before_any_window_is_typed_error(self, fitted):
        stream = StreamingClassifier(fitted, window=16, stride=8)
        with pytest.raises(StreamError, match="before any window"):
            stream.partial_fit(0)

    def test_evicted_feedback_window_is_typed_error(self, fitted, stream_data):
        stream = StreamingClassifier(
            fitted, window=16, stride=8, batch_size=4, feedback_capacity=2
        )
        stream.push(stream_data)  # 14 windows; only the last 2 retained
        with pytest.raises(StreamError, match="no longer buffered"):
            stream.partial_fit(0, window_index=0)

    def test_head_only_step_learns_without_touching_cache(self, fitted_lcomb, rng):
        stream = StreamingClassifier(fitted_lcomb, window=16, stride=16, batch_size=4)
        motif = rng.normal(size=(16, 12))
        stream.push(motif)
        target = (stream.emitted[-1].label + 1) % len(stream.emitted[-1].logits)

        first_loss = stream.partial_fit(target, lr=0.01)
        second_loss = stream.partial_fit(target, lr=0.01)
        assert isinstance(first_loss, float)
        assert second_loss < first_loss  # SGD on a fixed example descends

        # Embeddings are upstream of the head: replaying the same
        # window is still a cache hit, no re-encode.
        encoded = stream.cache.encoded_windows
        replay = stream.push(motif.copy())
        assert stream.cache.encoded_windows == encoded
        # ...but the head moved, so the logits did too.
        assert not np.array_equal(replay.logits, stream.emitted[0].logits)

    def test_include_adapter_requires_trainable_adapter(self, fitted, rng):
        stream = StreamingClassifier(fitted, window=16, stride=16, batch_size=4)
        stream.push(rng.normal(size=(16, 12)))
        with pytest.raises(StreamError, match="(?i)pca.*fit-once"):
            stream.partial_fit(0, include_adapter=True)

    def test_adapter_step_rotates_cache_fingerprints(self, fitted_lcomb, rng):
        stream = StreamingClassifier(fitted_lcomb, window=16, stride=16, batch_size=4)
        motif = rng.normal(size=(16, 12))
        stream.push(motif)
        stale_key = stream.cache.key_for(motif)

        loss = stream.partial_fit(0, include_adapter=True, lr=0.1)
        assert isinstance(loss, float)
        # The adapter moved: the same content now lives under a new
        # key, so the old embedding is unreachable rather than stale.
        assert stream.cache.key_for(motif) != stale_key
        encoded = stream.cache.encoded_windows
        stream.push(motif.copy())
        assert stream.cache.encoded_windows == encoded + 1
