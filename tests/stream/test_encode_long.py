"""Metamorphic and negative tests for chunked long-series encoding.

``encode_long`` has no reference implementation to diff against at
arbitrary lengths, so its contract is pinned by *relations*:

* order-invariant aggregations (``mean``, ``attention``) must not care
  how the per-window embeddings are permuted;
* per-window embeddings must not depend on what comes later in the
  stream (prefix consistency, bit-exact) — the fixed-width padding
  discipline is exactly what makes this hold;
* bad geometries fail with the *named* typed errors, not whatever a
  deeper layer happens to raise;
* the rolling content-addressed cache must never serve an embedding
  for data that drifted underneath it (seeded mutation test).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import load_pretrained
from repro.stream import (
    AGGREGATIONS,
    SeriesTooShortError,
    WindowGeometryError,
    WindowEmbeddingCache,
    encode_long,
)
from repro.stream.encode import _attention_pool


@pytest.fixture(scope="module")
def model():
    return load_pretrained("moment-tiny", seed=0)


@pytest.fixture()
def series(rng):
    return rng.normal(size=(70, 3))


class TestNegativeContracts:
    def test_stride_larger_than_window_raises_geometry_error(self, model, series):
        with pytest.raises(WindowGeometryError):
            encode_long(model, series, window=8, stride=9)

    def test_series_shorter_than_window_raises_too_short(self, model, rng):
        with pytest.raises(SeriesTooShortError):
            encode_long(model, rng.normal(size=(7, 3)), window=8, stride=4)

    def test_unknown_aggregation_rejected(self, model, series):
        with pytest.raises(ValueError, match="aggregation"):
            encode_long(model, series, window=8, stride=4, agg="max")

    def test_batched_input_rejected(self, model, rng):
        with pytest.raises(ValueError, match="T, D"):
            encode_long(model, rng.normal(size=(2, 32, 3)), window=8, stride=4)

    def test_non_positive_batch_windows_rejected(self, model, series):
        with pytest.raises(ValueError, match="batch_windows"):
            encode_long(model, series, window=8, stride=4, batch_windows=0)


class TestAggregation:
    def test_all_aggregations_produce_embedding_dim_vectors(self, model, series):
        for agg in AGGREGATIONS:
            enc = encode_long(model, series, window=16, stride=8, agg=agg)
            assert enc.pooled.ndim == 1
            assert enc.agg == agg
            assert enc.num_windows == 7  # (70 - 16) // 8 + 1

    def test_mean_matches_full_matrix_mean(self, model, series):
        enc = encode_long(
            model, series, window=16, stride=8, agg="mean", return_windows=True
        )
        expected = enc.window_embeddings.mean(axis=0, dtype=np.float64)
        # The pooled vector is cast back to the model dtype (float32),
        # so agreement is at float32 resolution, not float64.
        np.testing.assert_allclose(enc.pooled, expected, rtol=1e-6, atol=1e-7)

    def test_last_is_final_window_bit_exact(self, model, series):
        enc = encode_long(
            model, series, window=16, stride=8, agg="last", return_windows=True
        )
        np.testing.assert_array_equal(enc.pooled, enc.window_embeddings[-1])

    def test_window_matrix_only_retained_on_request(self, model, series):
        assert encode_long(model, series, 16, 8).window_embeddings is None
        assert encode_long(model, series, 16, 8, agg="attention").window_embeddings is None
        kept = encode_long(model, series, 16, 8, return_windows=True).window_embeddings
        assert kept is not None and kept.shape[0] == 7

    @pytest.mark.parametrize("agg", ["mean", "attention"])
    def test_order_invariant_aggs_survive_permutation(self, model, series, rng, agg):
        """Metamorphic: permuting the window embeddings must not move
        an order-invariant pool (``last`` deliberately fails this)."""
        enc = encode_long(
            model, series, window=16, stride=8, agg=agg, return_windows=True
        )
        permuted = enc.window_embeddings[rng.permutation(enc.num_windows)]
        if agg == "mean":
            repooled = permuted.mean(axis=0, dtype=np.float64)
        else:
            repooled = _attention_pool(permuted)
        np.testing.assert_allclose(enc.pooled, repooled, rtol=1e-6, atol=1e-7)

    def test_attention_weights_favour_no_window_spuriously(self, model, series):
        # Attention pooling is a convex combination: the pooled vector
        # stays inside the embeddings' coordinate-wise envelope.
        enc = encode_long(
            model, series, window=16, stride=8, agg="attention", return_windows=True
        )
        eps = 1e-5  # pooling runs in float64, the result is cast back
        assert np.all(enc.pooled <= enc.window_embeddings.max(axis=0) + eps)
        assert np.all(enc.pooled >= enc.window_embeddings.min(axis=0) - eps)


class TestChunkingInvariance:
    def test_prefix_windows_are_bit_identical(self, model, rng):
        """Window w's embedding must not depend on how much stream
        followed it — the padded fixed-width batches make every window's
        bits independent of its co-batch content."""
        x = rng.normal(size=(90, 4))
        full = encode_long(
            model, x, window=12, stride=6, batch_windows=4, return_windows=True
        )
        prefix = encode_long(
            model, x[:48], window=12, stride=6, batch_windows=4, return_windows=True
        )
        np.testing.assert_array_equal(
            full.window_embeddings[: prefix.num_windows], prefix.window_embeddings
        )

    def test_transform_hook_is_applied_per_batch(self, model, rng):
        x = rng.normal(size=(48, 3))
        zeroed = encode_long(
            model, x, window=12, stride=12, transform=lambda wins: wins * 0.0
        )
        true_zero = encode_long(model, np.zeros((48, 3)), window=12, stride=12)
        np.testing.assert_array_equal(zeroed.pooled, true_zero.pooled)


class TestCacheDrift:
    """The rolling cache must never serve an embedding for mutated data."""

    def test_mutated_window_is_re_encoded(self, fitted, rng):
        cache = WindowEmbeddingCache(fitted.pipeline, width=4)
        window = rng.normal(size=(16, 12))
        first = cache.embedding(window)
        assert cache.stats()["misses"] == 1

        # Drift: the caller mutates the very array it handed in.  A
        # cache keyed on identity (the PR 1 bug class) would happily
        # serve `first` again; content keys cannot.
        window[3, 7] += 1.0
        second = cache.embedding(window)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["encoded_windows"] == 2
        assert not np.array_equal(first, second)

    def test_unchanged_content_hits_even_from_a_fresh_array(self, fitted, rng):
        cache = WindowEmbeddingCache(fitted.pipeline, width=4)
        window = rng.normal(size=(16, 12))
        first = cache.embedding(window)
        replayed = cache.embedding(window.copy())  # same bits, new object
        assert cache.stats()["hits"] == 1
        np.testing.assert_array_equal(first, replayed)

    def test_seeded_drift_walk_never_serves_stale(self, fitted):
        """Seeded adversarial walk: randomly mutate-or-replay a window;
        every replay must hit, every mutation must miss and re-encode."""
        cache = WindowEmbeddingCache(fitted.pipeline, width=4)
        drift_rng = np.random.default_rng(20260808)
        window = drift_rng.normal(size=(16, 12))
        embeddings = {cache.key_for(window): cache.embedding(window).copy()}
        for _ in range(12):
            if drift_rng.random() < 0.5:
                index = tuple(drift_rng.integers(0, s) for s in window.shape)
                window[index] += drift_rng.normal()
            key = cache.key_for(window)
            known = key in embeddings
            hits_before = cache.hits
            embedding = cache.embedding(window)
            if known:
                # Same content as some earlier state: must be served
                # from cache, bit-identical to what that state got.
                assert cache.hits == hits_before + 1
                np.testing.assert_array_equal(embedding, embeddings[key])
            else:
                assert cache.hits == hits_before
                embeddings[key] = embedding.copy()
