"""Measured-vs-predicted peak memory for long-series encoding.

The acceptance geometry: a 100k-step, 8-channel series through
``encode_long`` at window=stride=128, 16 windows per encoder pass.
Peak traced allocation must land within ±20% of
:func:`repro.resources.streaming_inference_memory_bytes` — the model
the grid planner uses to admit streaming jobs, so an unnoticed drift
here silently breaks admission control.

The model is loaded *inside* the trace: the dominant term is the
compiled-graph capture tape of the first encoder pass, and a model
that already encoded something replays warm with a far smaller
footprint (pre-allocated buffers).  A fresh model is the worst — and
predicted — case.
"""

from __future__ import annotations

import tracemalloc

import numpy as np

from repro.models import load_pretrained
from repro.resources import streaming_inference_memory_bytes
from repro.stream import encode_long

WINDOW = 128
STRIDE = 128
CHANNELS = 8
BATCH_WINDOWS = 16
LENGTH = 100_000


def test_peak_memory_within_cost_model_bound():
    x = np.random.default_rng(7).normal(size=(LENGTH, CHANNELS))

    tracemalloc.start()
    try:
        model = load_pretrained("moment-tiny", seed=0)
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
        encoding = encode_long(
            model, x, WINDOW, STRIDE, batch_windows=BATCH_WINDOWS, agg="mean"
        )
        measured = tracemalloc.get_traced_memory()[1] - baseline
    finally:
        tracemalloc.stop()

    assert encoding.num_windows == (LENGTH - WINDOW) // STRIDE + 1

    predicted = streaming_inference_memory_bytes(
        model.config,
        window=WINDOW,
        channels=CHANNELS,
        batch_windows=BATCH_WINDOWS,
        agg="mean",
    )
    ratio = measured / predicted
    assert 0.8 <= ratio <= 1.2, (
        f"streaming peak memory drifted from the cost model: measured "
        f"{measured / 2**20:.2f} MiB vs predicted {predicted / 2**20:.2f} MiB "
        f"(ratio {ratio:.3f}, allowed 0.8..1.2)"
    )


def test_peak_memory_is_flat_in_series_length():
    """The bounded-memory claim itself: 4x the stream, ~same peak.

    Both runs use a fresh model so each traces a cold capture; the
    peak must track ``batch_windows``, not ``num_windows``.
    """

    def peak_for(length: int) -> int:
        x = np.random.default_rng(11).normal(size=(length, CHANNELS))
        tracemalloc.start()
        try:
            model = load_pretrained("moment-tiny", seed=0)
            tracemalloc.reset_peak()
            baseline = tracemalloc.get_traced_memory()[0]
            encode_long(model, x, WINDOW, STRIDE, batch_windows=BATCH_WINDOWS)
            return tracemalloc.get_traced_memory()[1] - baseline
        finally:
            tracemalloc.stop()

    short, long = peak_for(10_000), peak_for(40_000)
    assert long <= short * 1.1, (
        f"peak grew with stream length: {short / 2**20:.2f} MiB at 10k steps "
        f"vs {long / 2**20:.2f} MiB at 40k steps"
    )
