"""Window geometry: the shared source of truth for stream slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import (
    SeriesTooShortError,
    WindowGeometryError,
    num_windows,
    validate_geometry,
    window_batch,
    window_starts,
)


class TestValidateGeometry:
    def test_accepts_and_normalises_valid_pairs(self):
        assert validate_geometry(8, 8) == (8, 8)
        assert validate_geometry(np.int64(16), np.int64(4)) == (16, 4)
        assert all(isinstance(v, int) for v in validate_geometry(np.int64(8), 2))

    def test_stride_larger_than_window_is_a_typed_error(self):
        # The negative contract is asserted by *name*: a gapped stream
        # would silently drop samples, so it must be the dedicated
        # geometry error, not a generic ValueError from deeper down.
        with pytest.raises(WindowGeometryError):
            validate_geometry(8, 9)

    @pytest.mark.parametrize("window,stride", [(0, 1), (-4, 1), (8, 0), (8, -2)])
    def test_non_positive_values_rejected(self, window, stride):
        with pytest.raises(WindowGeometryError):
            validate_geometry(window, stride)

    def test_geometry_error_is_also_a_value_error(self):
        # Callers that only know ValueError still catch it.
        with pytest.raises(ValueError):
            validate_geometry(4, 5)


class TestNumWindows:
    def test_short_series_yields_zero_not_error(self):
        assert num_windows(7, 8, 1) == 0

    def test_exact_fit(self):
        assert num_windows(8, 8, 8) == 1
        assert num_windows(24, 8, 8) == 3

    def test_overlapping(self):
        # length 10, window 4, stride 2 -> starts 0, 2, 4, 6
        assert num_windows(10, 4, 2) == 4

    def test_trailing_partial_window_dropped(self):
        assert num_windows(11, 4, 2) == 4  # sample 10 never completes a window

    @pytest.mark.parametrize("length", range(4, 30))
    def test_matches_explicit_enumeration(self, length):
        window, stride = 4, 3
        explicit = len([s for s in range(0, length, stride) if s + window <= length])
        assert num_windows(length, window, stride) == explicit


class TestWindowStarts:
    def test_short_series_raises_series_too_short(self):
        with pytest.raises(SeriesTooShortError):
            window_starts(5, 8, 2)

    def test_starts_are_stride_multiples(self):
        starts = window_starts(20, 6, 3)
        np.testing.assert_array_equal(starts, [0, 3, 6, 9, 12])
        assert starts.dtype == np.int64

    def test_consistent_with_num_windows(self):
        for length in (8, 13, 21, 64):
            assert len(window_starts(length, 8, 5)) == num_windows(length, 8, 5)


class TestWindowBatch:
    def test_materialises_requested_windows(self, rng):
        x = rng.normal(size=(30, 3))
        starts = window_starts(len(x), 10, 5)
        batch = window_batch(x, starts, 10)
        assert batch.shape == (5, 10, 3)
        for i, start in enumerate(starts):
            np.testing.assert_array_equal(batch[i], x[start : start + 10])

    def test_returns_a_copy_not_a_view(self, rng):
        x = rng.normal(size=(12, 2))
        batch = window_batch(x, np.array([0]), 8)
        batch[0, 0, 0] = 1e9
        assert x[0, 0] != 1e9
