"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--dataset", "PEMS", "--adapter", "pca", "--full-finetune"]
        )
        assert args.dataset == "PEMS"
        assert args.full_finetune


class TestDatasets:
    def test_lists_all_twelve(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "DuckDuckGeese" in out
        assert "SpokenArabicDigits" in out
        assert out.count("\n") >= 14  # header + separator + 12 rows


class TestAdapters:
    def test_lists_known_adapters(self, capsys):
        assert main(["adapters"]) == 0
        out = capsys.readouterr().out
        for name in ("pca", "svd", "rand_proj", "var", "lcomb", "lda"):
            assert name in out


class TestSimulate:
    def test_ok_job_exit_zero(self, capsys):
        code = main(["simulate", "--dataset", "Vowels", "--adapter", "pca"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outcome : OK" in out

    def test_com_job_exit_nonzero(self, capsys):
        code = main(
            ["simulate", "--dataset", "PEMS", "--adapter", "none", "--full-finetune"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "COM" in out

    def test_short_names_accepted(self, capsys):
        assert main(["simulate", "--dataset", "Duck", "--adapter", "var"]) == 0


class TestRun:
    def test_trains_and_reports_accuracy(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "Vowels",
                "--adapter", "pca",
                "--epochs", "3",
                "--scale", "0.05",
                "--max-length", "32",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy:" in out

    def test_save_pipeline(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--dataset", "Vowels",
                "--adapter", "var",
                "--epochs", "2",
                "--scale", "0.05",
                "--max-length", "32",
                "--save", str(tmp_path / "ckpt"),
            ]
        )
        assert code == 0
        assert (tmp_path / "ckpt" / "pipeline.json").exists()


class TestProfile:
    def test_prints_op_table(self, capsys):
        code = main(
            [
                "profile",
                "--dataset", "Vowels",
                "--adapter", "pca",
                "--epochs", "2",
                "--scale", "0.05",
                "--max-length", "32",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "matmul" in out
        assert "phases  :" in out
        assert "float32" in out

    def test_dtype_and_top_flags(self, capsys):
        code = main(
            [
                "profile",
                "--dataset", "Vowels",
                "--adapter", "none",
                "--epochs", "1",
                "--scale", "0.05",
                "--max-length", "32",
                "--dtype", "float64",
                "--top", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "float64" in out
        assert "total" in out

    def test_rejects_unknown_dtype(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--dataset", "Vowels", "--dtype", "float16"])

    def test_compiled_flag_prints_replay_table(self, capsys):
        code = main(
            [
                "profile",
                "--dataset", "Vowels",
                "--adapter", "pca",
                "--epochs", "2",
                "--scale", "0.05",
                "--max-length", "32",
                "--compiled",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed op" in out
        assert "graph replays:" in out
        assert "arena bytes saved:" in out

    def test_compiled_flag_explains_encoder_in_loop(self, capsys):
        code = main(
            [
                "profile",
                "--dataset", "Vowels",
                "--adapter", "pca",
                "--strategy", "full",
                "--epochs", "1",
                "--scale", "0.05",
                "--max-length", "32",
                "--compiled",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no graph replays recorded" in out


class TestTableFigure:
    def test_table3_prints(self, capsys):
        assert main(["table", "3"]) == 0
        assert "1345" in capsys.readouterr().out

    def test_table1_micro_grid(self, capsys):
        code = main(
            ["table", "1", "--datasets", "Vowels", "--seeds", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out

    def test_figure_claims_micro_grid(self, capsys):
        code = main(["figure", "claims", "--datasets", "Vowels", "NATOPS", "--seeds", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out

    def test_invalid_table_id(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])


class TestLatexFlag:
    def test_table3_latex_output(self, capsys):
        assert main(["table", "3", "--latex"]) == 0
        out = capsys.readouterr().out
        assert "\\begin{tabular}" in out
        assert "\\toprule" in out
