"""Tests for the argv -> JobSpec / config mapping of the CLI.

Covers ``repro run`` (argv to the canonical JobSpec), ``repro
simulate`` (argv to cost-model inputs) and ``repro table`` / ``repro
figure`` / ``repro report`` (argv to the ExperimentRunner, including
the executor flags ``--workers`` and ``--job-timeout``).
"""

from __future__ import annotations

import pytest

from repro.cli import _make_runner, build_parser, spec_from_run_args
from repro.exec import JobSpec
from repro.training import FineTuneStrategy


@pytest.fixture(scope="module")
def parser():
    return build_parser()


class TestRunArgs:
    def test_defaults_map_to_canonical_spec(self, parser):
        args = parser.parse_args(["run", "--dataset", "Heartbeat"])
        spec = spec_from_run_args(args)
        assert spec == JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca")

    def test_full_argv_round_trip(self, parser):
        args = parser.parse_args(
            ["run", "--dataset", "Vowels", "--model", "vit-tiny", "--adapter", "var",
             "--strategy", "head", "--seed", "3"]
        )
        spec = spec_from_run_args(args)
        assert spec.dataset == "JapaneseVowels"  # short name normalised
        assert spec.model == "ViT"               # runnable name -> paper label
        assert spec.adapter == "var"
        assert spec.strategy is FineTuneStrategy.HEAD
        assert spec.seed == 3

    def test_rejects_unknown_adapter(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--dataset", "Heartbeat", "--adapter", "nope"])


class TestSimulateArgs:
    def test_defaults(self, parser):
        args = parser.parse_args(["simulate", "--dataset", "Heartbeat"])
        assert args.model == "moment-large"
        assert args.adapter == "none"
        assert args.channels == 5
        assert args.full_finetune is False

    def test_flags_parse(self, parser):
        args = parser.parse_args(
            ["simulate", "--dataset", "Vowels", "--model", "vit-base-ts",
             "--adapter", "pca", "--channels", "7", "--full-finetune"]
        )
        assert (args.adapter, args.channels, args.full_finetune) == ("pca", 7, True)


class TestGridCommandArgs:
    def test_table_maps_to_runner_config(self, parser, tmp_path):
        args = parser.parse_args(
            ["table", "2", "--preset", "fast", "--datasets", "Vowels", "Heartbeat",
             "--seeds", "0", "1", "--cache-dir", str(tmp_path),
             "--workers", "3", "--job-timeout", "5.5"]
        )
        runner = _make_runner(args)
        assert runner.config.datasets == ("JapaneseVowels", "Heartbeat")
        assert runner.config.seeds == (0, 1)
        assert runner.workers == 3
        assert runner.job_timeout == 5.5
        assert runner.store.cache_dir is not None
        assert runner.tracker is not None  # live progress when parallel

    def test_serial_default_has_no_tracker(self, parser):
        args = parser.parse_args(["table", "1"])
        runner = _make_runner(args)
        assert runner.workers == 1
        assert runner.job_timeout is None
        assert runner.tracker is None

    @pytest.mark.parametrize("command", ["table", "figure"])
    def test_executor_flags_available(self, parser, command):
        which = "1"
        args = parser.parse_args([command, which, "--workers", "2",
                                  "--job-timeout", "10"])
        assert args.workers == 2
        assert args.job_timeout == 10.0

    def test_report_executor_flags(self, parser):
        args = parser.parse_args(["report", "--workers", "4", "--job-timeout", "30"])
        runner = _make_runner(args)
        assert runner.workers == 4
        assert runner.job_timeout == 30.0


class TestSweepArgs:
    def test_defaults(self, parser, tmp_path):
        args = parser.parse_args(["sweep", "--grid-dir", str(tmp_path)])
        assert args.grid_dir == str(tmp_path)
        assert args.preset == "fast"
        assert args.shard is False
        assert args.no_resume is False
        assert args.retry_budget == 1
        assert args.workers == 1
        assert args.cache_dir is None  # resolved to <grid-dir>/cache at run time
        from repro.exec import DEFAULT_STALE_AFTER

        assert args.stale_after == DEFAULT_STALE_AFTER

    def test_grid_dir_is_required(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep"])

    def test_shard_flags_parse(self, parser, tmp_path):
        args = parser.parse_args(
            ["sweep", "--grid-dir", str(tmp_path), "--shard", "--no-resume",
             "--retry-budget", "3", "--stale-after", "7.5", "--owner", "shard-1",
             "--models", "MOMENT", "--adapters", "pca", "var",
             "--strategies", "head", "--seeds", "0", "1"]
        )
        assert args.shard and args.no_resume
        assert args.retry_budget == 3
        assert args.stale_after == 7.5
        assert args.owner == "shard-1"
        assert args.models == ["MOMENT"]
        assert args.adapters == ["pca", "var"]
        assert args.strategies == ["head"]
        assert args.seeds == [0, 1]

    def test_rejects_unknown_model(self, parser, tmp_path):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["sweep", "--grid-dir", str(tmp_path), "--models", "GPT"]
            )


class TestStreamArgs:
    def test_defaults(self, parser, tmp_path):
        args = parser.parse_args(
            ["stream", "--registry", str(tmp_path), "--name", "heart"]
        )
        assert args.registry == str(tmp_path)
        assert args.name == "heart"
        assert args.version is None
        assert args.input is None and args.dataset is None
        assert (args.length, args.window, args.stride) == (4096, 64, 16)
        assert args.chunk == 32 and args.batch_size == 16
        assert args.no_compiled is False and args.limit == 8

    def test_registry_and_name_are_required(self, parser, tmp_path):
        with pytest.raises(SystemExit):
            parser.parse_args(["stream", "--name", "heart"])
        with pytest.raises(SystemExit):
            parser.parse_args(["stream", "--registry", str(tmp_path)])

    def test_geometry_flags_parse(self, parser, tmp_path):
        args = parser.parse_args(
            ["stream", "--registry", str(tmp_path), "--name", "heart",
             "--dataset", "Heartbeat", "--length", "1000", "--window", "32",
             "--stride", "8", "--chunk", "5", "--batch-size", "4",
             "--no-compiled", "--limit", "3"]
        )
        assert args.dataset == "Heartbeat"
        assert (args.length, args.window, args.stride) == (1000, 32, 8)
        assert args.chunk == 5 and args.batch_size == 4
        assert args.no_compiled is True and args.limit == 3


class TestGridStatusArgs:
    def test_status_parses(self, parser, tmp_path):
        args = parser.parse_args(["grid", "status", str(tmp_path)])
        assert args.action == "status"
        assert args.grid_dir == str(tmp_path)

    def test_rejects_unknown_action(self, parser, tmp_path):
        with pytest.raises(SystemExit):
            parser.parse_args(["grid", "frobnicate", str(tmp_path)])

    def test_status_reports_counts_and_leases(self, tmp_path, capsys):
        from repro.cli import main
        from repro.exec import LeaseBoard, ScriptedRunner, run_jobs, scripted_grid

        grid_dir = tmp_path / "grid"
        runner = ScriptedRunner(tmp_path / "cache")
        specs = scripted_grid(6)
        run_jobs(runner, specs[:4], grid_dir=str(grid_dir))
        journal_side = ScriptedRunner(tmp_path / "cache")
        from repro.exec import GridJournal

        GridJournal(grid_dir, journal_side.config_fingerprint).register(specs)
        LeaseBoard(grid_dir, owner="shard-x").try_acquire("feedface")

        assert main(["grid", "status", str(grid_dir)]) == 0
        out = capsys.readouterr().out
        assert "6 total" in out
        assert "done" in out and "4" in out
        assert "shard-x" in out

    def test_status_without_journal_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["grid", "status", str(tmp_path)]) == 1
        assert "no grid journal" in capsys.readouterr().out
