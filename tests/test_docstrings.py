"""Documentation quality gate: every public item carries a docstring.

Walks the whole ``repro`` package and asserts that public modules,
classes and functions are documented — deliverable (e) of the
reproduction is enforced by CI, not by convention.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert inspect.getdoc(module), f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        if not inspect.getdoc(obj):
            undocumented.append(name)
        elif inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(getattr(obj, method_name)):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_package_exports_are_resolvable():
    """Every name in a package's __all__ must actually exist."""
    for module in MODULES:
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name!r}"
