"""Sanity checks on the example scripts.

Full example runs take minutes; these tests verify each script parses,
follows the repository conventions (module docstring, ``main()``
entry, ``__main__`` guard), and imports only the public API.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_has_main_and_guard(self, path):
        source = path.read_text()
        tree = ast.parse(source)
        functions = [n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
        assert "main" in functions
        assert '__name__ == "__main__"' in source

    def test_imports_only_public_api(self, path):
        """Examples must not reach into private modules."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "__future__":
                    continue
                assert not any(part.startswith("_") for part in node.module.split(".")), (
                    f"{path.name} imports private module {node.module}"
                )


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5


def test_quickstart_present():
    assert (EXAMPLES_DIR / "quickstart.py").exists()
