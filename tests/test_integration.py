"""End-to-end integration tests spanning every subsystem.

Each test exercises a realistic chain: generate data -> pretrain a
model -> fit an adapter -> fine-tune -> predict / persist / report —
the paths a downstream user actually runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.data import load_dataset, load_dataset_file, save_dataset
from repro.models import (
    MomentModel,
    ViTModel,
    pretrain_moment,
    pretrain_vit,
    synthetic_pretraining_corpus,
)
from repro.resources import RunStatus, simulate_finetuning
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


@pytest.fixture(scope="module")
def heartbeat():
    return load_dataset("Heartbeat", seed=0, scale=0.15, max_length=48, normalize=False)


class TestPretrainThenFineTune:
    def test_moment_full_chain(self, heartbeat):
        """Pretrain -> PCA adapter -> head fine-tune -> beats chance."""
        corpus = synthetic_pretraining_corpus(64, 48, np.random.default_rng(0))
        model = MomentModel("moment-tiny", seed=0)
        losses = pretrain_moment(model, corpus, steps=25, batch_size=16, seed=0)
        assert losses[-1] < losses[0]

        pipeline = AdapterPipeline(model, make_adapter("pca", 5), heartbeat.num_classes, seed=0)
        report = pipeline.fit(
            heartbeat.x_train,
            heartbeat.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
        )
        assert report.used_embedding_cache
        accuracy = pipeline.score(heartbeat.x_test, heartbeat.y_test)
        assert accuracy > 1.0 / heartbeat.num_classes

    def test_vit_full_chain(self, heartbeat):
        corpus = synthetic_pretraining_corpus(64, 48, np.random.default_rng(1))
        model = ViTModel("vit-tiny", seed=0)
        pretrain_vit(model, corpus, steps=10, batch_size=16, seed=0)

        pipeline = AdapterPipeline(model, make_adapter("var", 5), heartbeat.num_classes, seed=0)
        pipeline.fit(
            heartbeat.x_train,
            heartbeat.y_train,
            config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
        )
        assert pipeline.score(heartbeat.x_test, heartbeat.y_test) > 1.0 / heartbeat.num_classes


class TestSimulateBeforeRun:
    def test_simulator_gates_what_we_run(self, heartbeat):
        """The user workflow: check the budget, then choose the regime."""
        full = simulate_finetuning("moment-large", heartbeat.info, full_finetune=True)
        assert full.status is RunStatus.OUT_OF_MEMORY  # 61 channels: no

        with_adapter = simulate_finetuning("moment-large", heartbeat.info, adapter="pca")
        assert with_adapter.ok  # 5 channels, cached embeddings: yes
        assert with_adapter.seconds < full.seconds


class TestTrainPersistReload:
    def test_lcomb_train_save_reload_predict(self, tmp_path, heartbeat):
        model = MomentModel("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(
            model, make_adapter("lcomb_top_k", 5, seed=0), heartbeat.num_classes, seed=0
        )
        pipeline.fit(
            heartbeat.x_train,
            heartbeat.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=3, batch_size=32, learning_rate=5e-3, seed=0),
        )
        pipeline.save(tmp_path / "registry", "deployed")
        restored = AdapterPipeline.load(tmp_path / "registry", "deployed")
        np.testing.assert_allclose(
            pipeline.predict_logits(heartbeat.x_test),
            restored.predict_logits(heartbeat.x_test),
            atol=1e-12,
        )


class TestDatasetExportImportTrain:
    def test_training_on_reloaded_dataset_matches(self, tmp_path, heartbeat):
        path = save_dataset(heartbeat, tmp_path / "hb")
        reloaded = load_dataset_file(path)

        def accuracy(ds):
            model = MomentModel("moment-tiny", seed=0)
            model.eval()
            pipeline = AdapterPipeline(model, make_adapter("pca", 4), ds.num_classes, seed=0)
            pipeline.fit(
                ds.x_train, ds.y_train,
                config=TrainConfig(epochs=5, batch_size=32, seed=0),
            )
            return pipeline.score(ds.x_test, ds.y_test)

        assert accuracy(heartbeat) == accuracy(reloaded)


class TestCrossModelConsistency:
    @pytest.mark.parametrize("adapter_name", ["pca", "svd", "rand_proj", "var", "lda", "cluster_avg"])
    def test_every_fit_once_adapter_feeds_both_models(self, heartbeat, adapter_name):
        for model in (MomentModel("moment-tiny", seed=0), ViTModel("vit-tiny", seed=0)):
            model.eval()
            pipeline = AdapterPipeline(
                model, make_adapter(adapter_name, 5, seed=0), heartbeat.num_classes, seed=0
            )
            report = pipeline.fit(
                heartbeat.x_train,
                heartbeat.y_train,
                config=TrainConfig(epochs=2, batch_size=32, seed=0),
            )
            assert report.used_embedding_cache
            predictions = pipeline.predict(heartbeat.x_test)
            assert predictions.shape == (len(heartbeat.x_test),)
