"""Tests for the property-based verification harness (repro.testing)."""
