"""Tests for the golden regression store and ``repro selfcheck``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.runtime import golden_key
from repro.testing import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    check_goldens,
    compute_metrics,
    golden_store,
    resolve_golden_dir,
)

SMOKE = SMOKE_SCENARIOS[0]


class TestResolution:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path / "env"))
        assert resolve_golden_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path / "env"))
        assert resolve_golden_dir() == tmp_path / "env"

    def test_default_is_local_goldens(self, monkeypatch):
        monkeypatch.delenv("REPRO_GOLDEN_DIR", raising=False)
        assert str(resolve_golden_dir()) == "goldens"

    def test_keys_are_stable_and_namespaced(self):
        key = golden_key("pca_head_f32", "float32")
        assert key.startswith("golden/")
        assert key == golden_key("pca_head_f32", "float32")
        assert key != golden_key("pca_head_f32", "float64")

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="no_such_scenario"):
            check_goldens(tmp_path, names=["no_such_scenario"])


class TestCheckGoldens:
    def test_missing_snapshot_reported(self, tmp_path):
        (result,) = check_goldens(tmp_path, names=[SMOKE])
        assert result.status == "missing"
        assert not result.passed
        assert "update-golden" in result.detail

    def test_update_then_match_round_trip(self, tmp_path):
        (updated,) = check_goldens(tmp_path, names=[SMOKE], update=True)
        assert updated.status == "updated"
        assert updated.passed
        (checked,) = check_goldens(tmp_path, names=[SMOKE])
        assert checked.status == "match"
        assert checked.metrics == updated.metrics

    def test_metrics_are_deterministic(self):
        scenario = next(s for s in SCENARIOS if s.name == SMOKE)
        first = compute_metrics(scenario)
        second = compute_metrics(scenario)
        assert first == second
        assert set(first) >= {"first_loss", "final_loss", "test_accuracy"}

    def test_tampered_snapshot_reports_drift_by_metric(self, tmp_path):
        check_goldens(tmp_path, names=[SMOKE], update=True)
        _inject_drift(tmp_path)
        (result,) = check_goldens(tmp_path, names=[SMOKE])
        assert result.status == "drift"
        assert not result.passed
        assert "drifted from snapshot" in result.detail


def _inject_drift(golden_dir) -> None:
    """Perturb the stored snapshot beyond any drift tolerance."""
    scenario = next(s for s in SCENARIOS if s.name == SMOKE)
    store = golden_store(golden_dir)
    artifact = store.get(scenario.key)
    assert artifact is not None, "snapshot must exist before tampering"
    store.put(
        scenario.key,
        arrays={"values": artifact.arrays["values"] + 0.25},
        meta=dict(artifact.meta),
    )


@pytest.mark.slow
class TestSelfcheckCLI:
    """End-to-end exit-code contract of ``repro selfcheck``."""

    def test_drift_makes_selfcheck_fail_and_update_recovers(self, tmp_path, capsys):
        golden = tmp_path / "goldens"
        # Record a fresh snapshot through the CLI itself.
        assert main(["selfcheck", "--smoke", "--update-golden", "--golden-dir", str(golden)]) == 0
        assert main(["selfcheck", "--smoke", "--golden-dir", str(golden)]) == 0
        # Injected drift must flip the exit code to non-zero...
        _inject_drift(golden)
        assert main(["selfcheck", "--smoke", "--golden-dir", str(golden)]) == 1
        assert "drift" in capsys.readouterr().out
        # ...and --update-golden refreshes the snapshot back to green.
        assert main(["selfcheck", "--smoke", "--update-golden", "--golden-dir", str(golden)]) == 0
        assert main(["selfcheck", "--smoke", "--golden-dir", str(golden)]) == 0
