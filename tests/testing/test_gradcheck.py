"""Tests for the finite-difference engine and op-coverage enforcement."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

# The package re-exports the `gradcheck` *function* under the submodule's
# name, so module-level attributes are patched via the module object.
gradcheck_module = importlib.import_module("repro.testing.gradcheck")

from repro.nn.tensor import OP_REGISTRY, Tensor, registered_op
from repro.testing import (
    OP_CHECKS,
    GradcheckFailure,
    OpCase,
    assert_full_coverage,
    gradcheck,
    missing_checks,
    run_op_sweep,
    unregistered_ops,
)


class TestEngine:
    def test_correct_gradient_passes(self):
        result = gradcheck(
            lambda t: (t["x"] * t["x"]).sum(),
            {"x": np.array([0.3, -1.2, 0.7])},
            op="square",
            case="basic",
        )
        assert result.passed
        assert result.max_abs_err < 1e-6

    def test_wrong_gradient_caught(self):
        """Detaching one factor halves the analytic gradient of x**2 —
        the engine must flag the mismatch against finite differences."""
        with pytest.raises(GradcheckFailure, match="gradient mismatch"):
            gradcheck(
                lambda t: (t["x"] * Tensor(t["x"].data)).sum(),
                {"x": np.array([0.4, 1.1, -0.8])},
                op="detached_square",
                case="wrong",
            )

    def test_missing_gradient_caught(self):
        with pytest.raises(GradcheckFailure, match="received no gradient"):
            gradcheck(
                lambda t: t["x"].sum(),
                {"x": np.array([1.0, 2.0]), "unused": np.array([3.0])},
                op="partial",
                case="unused_input",
            )

    def test_float32_uses_looser_tolerances(self):
        result = gradcheck(
            lambda t: (t["x"].exp() * t["y"]).sum(),
            {"x": np.array([0.1, -0.4]), "y": np.array([0.9, 1.3])},
            dtype="float32",
            op="expmul",
            case="f32",
        )
        assert result.passed

    def test_result_repr(self):
        result = gradcheck(
            lambda t: t["x"].sum(), {"x": np.array([1.0])}, op="sum", case="repr"
        )
        assert "sum/repr" in repr(result)
        assert "ok" in repr(result)


class TestCoverage:
    def test_registry_enumerates_core_ops(self):
        for name in ("add", "matmul", "softmax", "layer_norm", "cross_entropy"):
            assert name in OP_REGISTRY, f"core op {name!r} missing from registry"

    def test_current_coverage_is_complete(self):
        assert missing_checks() == []
        assert unregistered_ops() == []
        assert_full_coverage()

    def test_new_op_without_case_fails_by_name(self):
        """Registering an op with no gradcheck case must fail the sweep
        and name the offender — the issue's core acceptance criterion."""

        @registered_op("totally_new_op")
        def totally_new_op(x):
            """Fake op for the coverage test."""
            return x

        try:
            assert "totally_new_op" in missing_checks()
            with pytest.raises(AssertionError, match="totally_new_op"):
                assert_full_coverage()
            with pytest.raises(AssertionError, match="totally_new_op"):
                run_op_sweep(dtypes=("float64",), ops=["add"])
        finally:
            OP_REGISTRY.pop("totally_new_op")

    def test_stale_case_fails_by_name(self, monkeypatch):
        bogus = dict(OP_CHECKS)
        bogus["retired_op"] = []
        monkeypatch.setattr(gradcheck_module, "OP_CHECKS", bogus)
        with pytest.raises(AssertionError, match="retired_op"):
            assert_full_coverage()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            registered_op("add")(lambda x: x)

    def test_non_differentiable_ops_exempt_from_checks(self):
        non_diff = [n for n, info in OP_REGISTRY.items() if not info.differentiable]
        assert not set(non_diff) & set(missing_checks())


class TestSweep:
    def test_sweep_subset_passes_and_labels_ops(self):
        results = run_op_sweep(dtypes=("float64",), ops=["add", "matmul"])
        assert results
        assert {r.op for r in results} == {"add", "matmul"}
        assert all(r.passed for r in results)

    def test_sweep_failure_carries_op_name(self, monkeypatch):
        broken = OpCase(
            "broken",
            lambda t: t["x"] * Tensor(t["x"].data),
            {"x": np.array([0.5, -0.9])},
        )
        cases = dict(OP_CHECKS)
        cases["add"] = [broken]
        monkeypatch.setattr(gradcheck_module, "OP_CHECKS", cases)
        with pytest.raises(GradcheckFailure, match=r"\[op=add\]"):
            run_op_sweep(dtypes=("float64",), ops=["add"])

    def test_every_case_runs_in_both_dtypes_for_one_op(self):
        results = run_op_sweep(ops=["sigmoid"])
        assert {r.dtype for r in results} == {"float32", "float64"}
