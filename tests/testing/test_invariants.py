"""Tests for the metamorphic/differential invariant registry."""

from __future__ import annotations

from repro.testing import INVARIANTS, InvariantResult, invariant, run_invariants


class TestRegistry:
    def test_expected_invariants_registered(self):
        for name in (
            "pca_orthonormality",
            "svd_matches_pca_on_centered_data",
            "rand_proj_norm_preservation",
            "lcomb_top_k_row_renormalization",
            "adapter_permutation_equivariance",
            "layer_norm_matches_reference",
        ):
            assert name in INVARIANTS, f"invariant {name!r} missing"

    def test_all_current_invariants_pass(self):
        results = run_invariants()
        assert len(results) == len(INVARIANTS)
        failures = [r for r in results if not r.passed]
        assert not failures, f"invariant failures: {failures}"

    def test_failure_captured_not_raised(self):
        @invariant("deliberately_failing")
        def deliberately_failing():
            """Test-only invariant that always fails."""
            assert 1 == 2, "intentional failure"

        try:
            results = {r.name: r for r in run_invariants(names=["deliberately_failing"])}
            result = results["deliberately_failing"]
            assert not result.passed
            assert "intentional failure" in result.detail
        finally:
            INVARIANTS.pop("deliberately_failing")

    def test_error_captured_as_failure(self):
        @invariant("deliberately_crashing")
        def deliberately_crashing():
            """Test-only invariant that raises a non-assertion error."""
            raise RuntimeError("boom")

        try:
            results = {r.name: r for r in run_invariants(names=["deliberately_crashing"])}
            result = results["deliberately_crashing"]
            assert not result.passed
            assert "boom" in result.detail
        finally:
            INVARIANTS.pop("deliberately_crashing")

    def test_result_repr(self):
        result = InvariantResult("sample", True, "")
        assert "sample" in repr(result)
