"""Tests for the seeded strategies and the ``given`` decorator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (
    Falsified,
    Strategy,
    arrays,
    broadcastable_pairs,
    floats,
    given,
    integers,
    job_specs,
    labeled_datasets,
    sampled_from,
    series_batches,
    shapes,
)


class TestBasicStrategies:
    def test_integers_bounds_and_determinism(self):
        strategy = integers(-3, 9)
        first = [strategy.example(np.random.default_rng(5)) for _ in range(20)]
        second = [strategy.example(np.random.default_rng(5)) for _ in range(20)]
        assert first == second
        assert all(-3 <= value <= 9 for value in first)

    def test_integers_shrink_moves_toward_low(self):
        strategy = integers(0, 100)
        candidates = list(strategy.shrink_candidates(64))
        assert candidates
        assert all(abs(c) < 64 for c in candidates)

    def test_floats_bounds(self):
        strategy = floats(-1.5, 2.5)
        rng = np.random.default_rng(0)
        assert all(-1.5 <= strategy.example(rng) <= 2.5 for _ in range(50))

    def test_sampled_from_membership(self):
        options = ["pca", "svd", "var"]
        strategy = sampled_from(options)
        rng = np.random.default_rng(1)
        assert all(strategy.example(rng) in options for _ in range(20))

    def test_shapes_respects_limits(self):
        strategy = shapes(min_dims=2, max_dims=4, min_side=1, max_side=3)
        rng = np.random.default_rng(2)
        for _ in range(30):
            shape = strategy.example(rng)
            assert 2 <= len(shape) <= 4
            assert all(1 <= side <= 3 for side in shape)

    def test_map_transforms_examples(self):
        doubled = integers(1, 5).map(lambda v: v * 2)
        rng = np.random.default_rng(3)
        assert all(doubled.example(rng) % 2 == 0 for _ in range(20))


class TestArrayStrategies:
    def test_arrays_fixed_shape_and_dtype(self):
        strategy = arrays(shape=(2, 3), dtype=np.float32)
        value = strategy.example(np.random.default_rng(4))
        assert value.shape == (2, 3)
        assert value.dtype == np.float32

    def test_arrays_drawn_shape(self):
        strategy = arrays(shape=shapes(min_dims=1, max_dims=2, max_side=3))
        value = strategy.example(np.random.default_rng(5))
        assert 1 <= value.ndim <= 2

    def test_arrays_shrink_reaches_zero(self):
        strategy = arrays(shape=(2, 2))
        value = strategy.example(np.random.default_rng(6))
        chain = list(strategy.shrink_candidates(value))
        assert any(np.all(candidate == 0) for candidate in chain if candidate.size)

    def test_broadcastable_pairs_actually_broadcast(self):
        strategy = broadcastable_pairs()
        rng = np.random.default_rng(7)
        for _ in range(30):
            a, b = strategy.example(rng)
            np.broadcast_shapes(a.shape, b.shape)  # must not raise

    def test_series_batches_are_3d(self):
        strategy = series_batches(max_n=4, max_t=8, max_d=5)
        value = strategy.example(np.random.default_rng(8))
        assert value.ndim == 3

    def test_labeled_datasets_consistent(self):
        x, y = labeled_datasets().example(np.random.default_rng(9))
        assert x.ndim == 3
        assert len(x) == len(y)
        assert y.min() == 0
        assert len(np.unique(y)) == y.max() + 1

    def test_job_specs_draw_valid_specs(self):
        from repro.exec import JobSpec

        spec = job_specs().example(np.random.default_rng(10))
        assert isinstance(spec, JobSpec)
        shrunk = list(job_specs().shrink_candidates(spec))
        assert all(isinstance(s, JobSpec) for s in shrunk)


class TestGiven:
    def test_runs_requested_number_of_examples(self):
        calls = []

        @given(max_examples=7, value=integers(0, 10))
        def property_test(value):
            calls.append(value)

        property_test()
        assert len(calls) == 7

    def test_falsified_raised_with_shrunk_example(self):
        @given(max_examples=25, value=integers(0, 1000))
        def always_small(value):
            assert value < 50

        with pytest.raises(Falsified) as excinfo:
            always_small()
        message = str(excinfo.value)
        assert "falsified" in message
        assert "value=" in message
        # The original assertion is chained for debugging.
        assert isinstance(excinfo.value.__cause__, AssertionError)

    def test_shrinking_minimises_integer_counterexample(self):
        seen = []

        @given(max_examples=25, value=integers(0, 1000))
        def always_small(value):
            seen.append(value)
            assert value < 50

        with pytest.raises(Falsified) as excinfo:
            always_small()
        # Greedy shrink should land at (or very near) the boundary.
        assert f"value={min(v for v in seen if v >= 50)}" in str(excinfo.value)

    def test_same_seed_reproduces_failure(self):
        def make():
            @given(max_examples=10, seed=99, value=integers(0, 10**6))
            def flaky(value):
                assert value % 2 == 0

            return flaky

        first = pytest.raises(Falsified, make()).value
        second = pytest.raises(Falsified, make()).value
        assert str(first) == str(second)

    def test_fixtures_pass_through(self, rng):
        @given(max_examples=3, value=integers(0, 5))
        def uses_fixture(rng, value):
            assert isinstance(rng, np.random.Generator)
            assert 0 <= value <= 5

        uses_fixture(rng)

    def test_rejects_non_strategy_kwargs(self):
        with pytest.raises(TypeError):
            given(value=42)

    def test_requires_at_least_one_strategy(self):
        with pytest.raises(TypeError):
            given(max_examples=5)

    def test_seed_parameter_cannot_be_a_strategy(self):
        """``seed`` is the decorator's own base seed; a Strategy there
        is a naming collision, rejected with guidance."""
        with pytest.raises(TypeError, match="base-seed"):
            given(seed=integers(0, 5), value=integers(0, 1))

    def test_signature_hides_drawn_parameters(self):
        import inspect

        @given(value=integers(0, 1))
        def prop(self, rng, value):
            pass

        assert list(inspect.signature(prop).parameters) == ["self", "rng"]

    def test_strategy_repr_mentions_label(self):
        assert "integers" in repr(integers(0, 1))
        assert isinstance(integers(0, 1), Strategy)
