"""Float32-vs-float64 parity of the full fit pipeline.

The fast-numerics core computes in float32 by default.  These tests
pin the claim that the precision drop is free at the task level: the
same pipeline fit under both dtype policies must produce comparable
losses and identical test accuracy on the surrogate data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import build_model
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("JapaneseVowels", seed=0, scale=0.15, max_length=32, normalize=False)


def fit_under(dtype, dataset, strategy=FineTuneStrategy.ADAPTER_HEAD, adapter="pca"):
    with nn.default_dtype(dtype):
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(
            model, make_adapter(adapter, 4, seed=0), dataset.num_classes, seed=0
        )
        config = TrainConfig(epochs=4, batch_size=16, learning_rate=3e-3, seed=0)
        report = pipeline.fit(dataset.x_train, dataset.y_train, strategy=strategy, config=config)
        accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    return report, accuracy


class TestFitParity:
    def test_head_path_parity(self, dataset):
        report32, acc32 = fit_under("float32", dataset)
        report64, acc64 = fit_under("float64", dataset)
        np.testing.assert_allclose(
            report32.train_result.losses, report64.train_result.losses, rtol=1e-3, atol=1e-4
        )
        assert acc32 == pytest.approx(acc64, abs=0.05)

    def test_joint_path_parity(self, dataset):
        report32, acc32 = fit_under(
            "float32", dataset, strategy=FineTuneStrategy.ADAPTER_HEAD, adapter="lcomb"
        )
        report64, acc64 = fit_under(
            "float64", dataset, strategy=FineTuneStrategy.ADAPTER_HEAD, adapter="lcomb"
        )
        assert not report32.used_embedding_cache
        np.testing.assert_allclose(
            report32.train_result.losses, report64.train_result.losses, rtol=5e-2, atol=5e-3
        )
        assert acc32 == pytest.approx(acc64, abs=0.1)

    def test_float32_is_the_default_policy(self, dataset):
        model = build_model("moment-tiny", seed=0)
        assert model.dtype == np.float32

    def test_profile_flows_into_fit_report(self, dataset):
        with nn.default_dtype("float32"):
            model = build_model("moment-tiny", seed=0)
            model.eval()
            pipeline = AdapterPipeline(
                model, make_adapter("pca", 4, seed=0), dataset.num_classes, seed=0
            )
            config = TrainConfig(epochs=2, batch_size=16, profile=True, seed=0)
            report = pipeline.fit(dataset.x_train, dataset.y_train, config=config)
        assert report.train_result.op_profile
        assert report.summary.ops
        assert "matmul" in report.summary.ops
