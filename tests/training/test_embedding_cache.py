"""Tests for the frozen-encoder embedding cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import build_model
from repro.training import EmbeddingCache, compute_embeddings


@pytest.fixture(scope="module")
def model():
    m = build_model("moment-tiny", seed=0)
    m.eval()
    return m


class TestComputeEmbeddings:
    def test_shape(self, model, rng):
        emb = compute_embeddings(model, rng.normal(size=(10, 32, 3)))
        assert emb.shape == (10, 64)

    def test_matches_direct_encode(self, model, rng):
        x = rng.normal(size=(7, 32, 3))
        with nn.no_grad():
            direct = model.encode(x).data
        np.testing.assert_allclose(compute_embeddings(model, x), direct, atol=1e-10)

    def test_batch_size_independent(self, model, rng):
        x = rng.normal(size=(9, 32, 3))
        a = compute_embeddings(model, x, batch_size=2)
        b = compute_embeddings(model, x, batch_size=64)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_rejects_wrong_ndim(self, model):
        with pytest.raises(ValueError):
            compute_embeddings(model, np.zeros((4, 5)))

    def test_restores_training_mode(self, model, rng):
        model.train()
        compute_embeddings(model, rng.normal(size=(2, 32, 2)))
        assert model.training
        model.eval()

    def test_no_graph_built(self, model, rng):
        """Embeddings come back as plain arrays (inference only)."""
        emb = compute_embeddings(model, rng.normal(size=(3, 32, 2)))
        assert isinstance(emb, np.ndarray)


class TestEmbeddingCache:
    def test_caches_by_identity(self, model, rng):
        cache = EmbeddingCache(model)
        x = rng.normal(size=(5, 32, 2))
        a = cache.get(x)
        b = cache.get(x)
        assert a is b
        assert len(cache) == 1

    def test_distinct_arrays_distinct_entries(self, model, rng):
        cache = EmbeddingCache(model)
        cache.get(rng.normal(size=(3, 32, 2)))
        cache.get(rng.normal(size=(3, 32, 2)))
        assert len(cache) == 2

    def test_clear(self, model, rng):
        cache = EmbeddingCache(model)
        cache.get(rng.normal(size=(3, 32, 2)))
        cache.clear()
        assert len(cache) == 0
