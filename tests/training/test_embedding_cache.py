"""Tests for the frozen-encoder embedding cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import build_model
from repro.training import EmbeddingCache, compute_embeddings


@pytest.fixture(scope="module")
def model():
    m = build_model("moment-tiny", seed=0)
    m.eval()
    return m


class TestComputeEmbeddings:
    def test_shape(self, model, rng):
        emb = compute_embeddings(model, rng.normal(size=(10, 32, 3)))
        assert emb.shape == (10, 64)

    def test_matches_direct_encode(self, model, rng):
        x = rng.normal(size=(7, 32, 3))
        with nn.no_grad():
            direct = model.encode(x).data
        np.testing.assert_allclose(compute_embeddings(model, x), direct, atol=1e-10)

    def test_batch_size_independent(self, model, rng):
        x = rng.normal(size=(9, 32, 3))
        a = compute_embeddings(model, x, batch_size=2)
        b = compute_embeddings(model, x, batch_size=64)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_rejects_wrong_ndim(self, model):
        with pytest.raises(ValueError):
            compute_embeddings(model, np.zeros((4, 5)))

    def test_restores_training_mode(self, model, rng):
        model.train()
        compute_embeddings(model, rng.normal(size=(2, 32, 2)))
        assert model.training
        model.eval()

    def test_no_graph_built(self, model, rng):
        """Embeddings come back as plain arrays (inference only)."""
        emb = compute_embeddings(model, rng.normal(size=(3, 32, 2)))
        assert isinstance(emb, np.ndarray)

    def test_compiled_replay_is_bit_identical(self, model, rng):
        """compiled=True replays the frozen encoder to the same bits."""
        model.freeze()
        x = rng.normal(size=(9, 32, 3))
        eager = compute_embeddings(model, x, batch_size=4, compiled=False)
        compiled = compute_embeddings(model, x, batch_size=4, compiled=True)
        np.testing.assert_array_equal(compiled, eager)
        assert model._graph_cache.stats()["compiled"] >= 1

    def test_repeated_batches_replay_one_graph_per_bucket(self, model, rng):
        model.freeze()
        model._graph_cache.clear()
        before = model._graph_cache.stats()["misses"]
        compute_embeddings(model, rng.normal(size=(12, 32, 3)), batch_size=4)
        stats = model._graph_cache.stats()
        # Three equal batches share one (shape, dtype) bucket: a single
        # capture, then replays.
        assert stats["misses"] - before == 1
        assert stats["hits"] >= 2


class TestComputeEmbeddingsEmpty:
    def test_empty_batch_returns_well_shaped_array(self, model):
        emb = compute_embeddings(model, np.zeros((0, 32, 3)))
        assert emb.shape == (0, model.embed_dim)
        assert emb.dtype == model.dtype

    def test_empty_batch_any_geometry(self, model):
        assert compute_embeddings(model, np.zeros((0, 7, 11))).shape == (0, 64)


class TestEmbeddingCache:
    def test_caches_by_identity(self, model, rng):
        cache = EmbeddingCache(model)
        x = rng.normal(size=(5, 32, 2))
        a = cache.get(x)
        b = cache.get(x)
        assert a is b
        assert len(cache) == 1

    def test_distinct_arrays_distinct_entries(self, model, rng):
        cache = EmbeddingCache(model)
        cache.get(rng.normal(size=(3, 32, 2)))
        cache.get(rng.normal(size=(3, 32, 2)))
        assert len(cache) == 2

    def test_clear(self, model, rng):
        cache = EmbeddingCache(model)
        cache.get(rng.normal(size=(3, 32, 2)))
        cache.clear()
        assert len(cache) == 0


class TestContentAddressing:
    """Regression tests for the old ``id()``-keyed cache's failure modes.

    ``id(x)`` can be recycled after garbage collection (a brand-new
    array could silently inherit another array's embeddings) and never
    notices in-place mutation.  Content keys make both impossible: the
    key is a pure function of the array's bytes, so an equal copy hits
    and any mutation misses.
    """

    def test_equal_content_shares_one_entry(self, model, rng):
        cache = EmbeddingCache(model)
        x = rng.normal(size=(4, 32, 2))
        a = cache.get(x)
        b = cache.get(x.copy())  # different object, same bytes
        assert a is b
        assert len(cache) == 1

    def test_key_is_independent_of_object_identity(self, model, rng):
        cache = EmbeddingCache(model)
        x = rng.normal(size=(4, 32, 2))
        assert cache.key_for(x) == cache.key_for(x.copy())

    def test_mutation_cannot_return_stale_embeddings(self, model, rng):
        cache = EmbeddingCache(model)
        x = rng.normal(size=(4, 32, 2))
        stale = cache.get(x).copy()
        x[0] += 10.0  # in-place mutation: same object, new content
        fresh = cache.get(x)
        assert len(cache) == 2
        np.testing.assert_allclose(fresh, compute_embeddings(model, x), atol=1e-10)
        assert not np.allclose(fresh, stale)

    def test_recycled_storage_cannot_return_stale_embeddings(self, model, rng):
        """A new array reusing a dead array's memory gets its own entry."""
        cache = EmbeddingCache(model)
        x = rng.normal(size=(4, 32, 2))
        first_key = cache.key_for(x)
        cache.get(x)
        del x  # the old id()/buffer may now be recycled...
        y = rng.normal(size=(4, 32, 2))
        assert cache.key_for(y) != first_key
        np.testing.assert_allclose(
            cache.get(y), compute_embeddings(model, y), atol=1e-10
        )
        assert len(cache) == 2

    def test_model_weights_are_part_of_the_key(self, rng):
        from repro.runtime import ArtifactStore

        store = ArtifactStore()
        x = rng.normal(size=(3, 32, 2))
        cache_a = EmbeddingCache(build_model("moment-tiny", seed=0), store=store)
        cache_b = EmbeddingCache(build_model("moment-tiny", seed=1), store=store)
        emb_a = cache_a.get(x)
        emb_b = cache_b.get(x)
        assert len(store) == 2  # no cross-contamination between models
        assert not np.allclose(emb_a, emb_b)

    def test_adapter_fingerprint_separates_entries(self, model, rng):
        from repro.runtime import ArtifactStore

        store = ArtifactStore()
        x = rng.normal(size=(3, 32, 2))
        EmbeddingCache(model, store=store, adapter_fingerprint="pca-fit-1").get(x)
        EmbeddingCache(model, store=store, adapter_fingerprint="svd-fit-1").get(x)
        assert len(store) == 2

    def test_disk_store_serves_fresh_instance(self, model, rng, tmp_path):
        from repro.runtime import ArtifactStore

        x = rng.normal(size=(3, 32, 2))
        warm = EmbeddingCache(model, store=ArtifactStore(tmp_path)).get(x)
        fresh_store = ArtifactStore(tmp_path)
        served = EmbeddingCache(model, store=fresh_store).get(x)
        np.testing.assert_array_equal(served, warm)
        assert fresh_store.stats.hits == 1
        assert fresh_store.stats.misses == 0
