"""Tests for pipeline state flattening (the registry's payload format)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import build_model
from repro.training import (
    AdapterPipeline,
    FineTuneStrategy,
    TrainConfig,
    pipeline_from_state,
    pipeline_state,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("JapaneseVowels", seed=0, scale=0.1, max_length=32, normalize=False)


def fitted_pipeline(dataset, adapter_name, epochs=2):
    model = build_model("moment-tiny", seed=0)
    model.eval()
    channels = 1 if adapter_name == "none" else 4
    pipe = AdapterPipeline(model, make_adapter(adapter_name, channels, seed=0), dataset.num_classes, seed=0)
    strategy = (
        FineTuneStrategy.HEAD if adapter_name == "none" else FineTuneStrategy.ADAPTER_HEAD
    )
    pipe.fit(dataset.x_train, dataset.y_train, strategy=strategy,
             config=TrainConfig(epochs=epochs, batch_size=16, seed=0))
    return pipe


@pytest.mark.parametrize(
    "adapter_name", ["pca", "scaled_pca", "svd", "rand_proj", "var", "lcomb", "lcomb_top_k", "none"]
)
def test_round_trip_predictions_identical(dataset, adapter_name):
    pipe = fitted_pipeline(dataset, adapter_name)
    restored = pipeline_from_state(*pipeline_state(pipe))
    np.testing.assert_allclose(
        pipe.predict_logits(dataset.x_test),
        restored.predict_logits(dataset.x_test),
        atol=1e-12,
    )


def test_unfitted_pipeline_rejected(dataset):
    model = build_model("moment-tiny", seed=0)
    pipe = AdapterPipeline(model, make_adapter("pca", 4), dataset.num_classes)
    with pytest.raises(ValueError):
        pipeline_state(pipe)


def test_manifest_contents(dataset):
    pipe = fitted_pipeline(dataset, "pca")
    arrays, manifest = pipeline_state(pipe)
    assert manifest["model_config"] == "moment-tiny"
    assert manifest["adapter"]["registry_name"] == "pca"
    assert manifest["adapter"]["output_channels"] == 4
    assert manifest["num_classes"] == dataset.num_classes
    # Arrays are flattened under their component prefixes.
    prefixes = {name.split("/", 1)[0] for name in arrays}
    assert prefixes >= {"model", "head"}


def test_patch_pca_kwargs_preserved(dataset):
    model = build_model("moment-tiny", seed=0)
    model.eval()
    adapter = make_adapter("patch_pca", 4, patch_window_size=4)
    pipe = AdapterPipeline(model, adapter, dataset.num_classes, seed=0)
    pipe.fit(dataset.x_train, dataset.y_train, config=TrainConfig(epochs=1, batch_size=16, seed=0))
    restored = pipeline_from_state(*pipeline_state(pipe))
    assert restored.adapter.patch_window_size == 4
    np.testing.assert_allclose(
        pipe.predict_logits(dataset.x_test),
        restored.predict_logits(dataset.x_test),
        atol=1e-12,
    )


def test_restored_pipeline_is_usable_for_scoring(dataset):
    pipe = fitted_pipeline(dataset, "var")
    restored = pipeline_from_state(*pipeline_state(pipe))
    assert restored.score(dataset.x_test, dataset.y_test) == pipe.score(
        dataset.x_test, dataset.y_test
    )
