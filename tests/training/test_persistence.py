"""Tests for pipeline save/load."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import build_model
from repro.training import (
    AdapterPipeline,
    FineTuneStrategy,
    TrainConfig,
    load_pipeline,
    save_pipeline,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("JapaneseVowels", seed=0, scale=0.1, max_length=32, normalize=False)


def fitted_pipeline(dataset, adapter_name, epochs=2):
    model = build_model("moment-tiny", seed=0)
    model.eval()
    channels = 1 if adapter_name == "none" else 4
    pipe = AdapterPipeline(model, make_adapter(adapter_name, channels, seed=0), dataset.num_classes, seed=0)
    strategy = (
        FineTuneStrategy.HEAD if adapter_name == "none" else FineTuneStrategy.ADAPTER_HEAD
    )
    pipe.fit(dataset.x_train, dataset.y_train, strategy=strategy,
             config=TrainConfig(epochs=epochs, batch_size=16, seed=0))
    return pipe


@pytest.mark.parametrize(
    "adapter_name", ["pca", "scaled_pca", "svd", "rand_proj", "var", "lcomb", "lcomb_top_k", "none"]
)
def test_round_trip_predictions_identical(tmp_path, dataset, adapter_name):
    pipe = fitted_pipeline(dataset, adapter_name)
    save_pipeline(pipe, tmp_path / adapter_name)
    restored = load_pipeline(tmp_path / adapter_name)
    np.testing.assert_allclose(
        pipe.predict_logits(dataset.x_test),
        restored.predict_logits(dataset.x_test),
        atol=1e-12,
    )


def test_unfitted_pipeline_rejected(tmp_path, dataset):
    model = build_model("moment-tiny", seed=0)
    pipe = AdapterPipeline(model, make_adapter("pca", 4), dataset.num_classes)
    with pytest.raises(ValueError):
        save_pipeline(pipe, tmp_path / "nope")


def test_manifest_contents(tmp_path, dataset):
    pipe = fitted_pipeline(dataset, "pca")
    save_pipeline(pipe, tmp_path / "p")
    manifest = json.loads((tmp_path / "p" / "pipeline.json").read_text())
    assert manifest["model_config"] == "moment-tiny"
    assert manifest["adapter"]["registry_name"] == "pca"
    assert manifest["adapter"]["output_channels"] == 4
    assert manifest["num_classes"] == dataset.num_classes


def test_patch_pca_kwargs_preserved(tmp_path, dataset):
    model = build_model("moment-tiny", seed=0)
    model.eval()
    adapter = make_adapter("patch_pca", 4, patch_window_size=4)
    pipe = AdapterPipeline(model, adapter, dataset.num_classes, seed=0)
    pipe.fit(dataset.x_train, dataset.y_train, config=TrainConfig(epochs=1, batch_size=16, seed=0))
    save_pipeline(pipe, tmp_path / "ppca")
    restored = load_pipeline(tmp_path / "ppca")
    assert restored.adapter.patch_window_size == 4
    np.testing.assert_allclose(
        pipe.predict_logits(dataset.x_test),
        restored.predict_logits(dataset.x_test),
        atol=1e-12,
    )


def test_loaded_pipeline_is_usable_for_scoring(tmp_path, dataset):
    pipe = fitted_pipeline(dataset, "var")
    save_pipeline(pipe, tmp_path / "v")
    restored = load_pipeline(tmp_path / "v")
    assert restored.score(dataset.x_test, dataset.y_test) == pipe.score(
        dataset.x_test, dataset.y_test
    )
