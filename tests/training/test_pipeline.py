"""Tests for the AdapterPipeline (adapter + encoder + head)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import build_model
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("JapaneseVowels", seed=0, scale=0.15, max_length=32, normalize=False)


def quick_config(epochs=4):
    return TrainConfig(epochs=epochs, batch_size=16, learning_rate=3e-3, seed=0)


def make_pipeline(dataset, adapter_name="pca", model_name="moment-tiny"):
    model = build_model(model_name, seed=0)
    model.eval()
    adapter = make_adapter(adapter_name, 4, seed=0)
    return AdapterPipeline(model, adapter, dataset.num_classes, seed=0)


class TestStrategies:
    def test_fit_once_adapter_uses_embedding_cache(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        report = pipe.fit(dataset.x_train, dataset.y_train, config=quick_config())
        assert report.used_embedding_cache
        assert report.embedding_s > 0
        assert report.train_result is not None

    def test_lcomb_runs_joint_loop(self, dataset):
        pipe = make_pipeline(dataset, "lcomb")
        report = pipe.fit(dataset.x_train, dataset.y_train, config=quick_config(2))
        assert not report.used_embedding_cache
        assert report.embedding_s == 0.0

    def test_head_strategy_freezes_encoder(self, dataset):
        pipe = make_pipeline(dataset, "none")
        before = pipe.model.patch_embed.weight.data.copy()
        pipe.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.HEAD,
            config=quick_config(),
        )
        np.testing.assert_array_equal(pipe.model.patch_embed.weight.data, before)

    def test_full_strategy_updates_encoder(self, dataset):
        pipe = make_pipeline(dataset, "lcomb")
        before = pipe.model.patch_embed.weight.data.copy()
        pipe.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.FULL,
            config=quick_config(1),
        )
        assert not np.array_equal(pipe.model.patch_embed.weight.data, before)

    def test_adapter_head_updates_lcomb_weights(self, dataset):
        pipe = make_pipeline(dataset, "lcomb")
        pipe.adapter.fit(dataset.x_train)
        before = pipe.adapter.module.weight.data.copy()
        pipe.fit(dataset.x_train, dataset.y_train, config=quick_config(2))
        assert not np.array_equal(pipe.adapter.module.weight.data, before)

    def test_full_with_fitted_adapter_runs_encoder_in_loop(self, dataset):
        """FULL + PCA: the adapter is frozen but the encoder trains."""
        pipe = make_pipeline(dataset, "pca")
        before = pipe.model.patch_embed.weight.data.copy()
        report = pipe.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.FULL,
            config=quick_config(1),
        )
        assert not report.used_embedding_cache
        assert not np.array_equal(pipe.model.patch_embed.weight.data, before)


class TestPrediction:
    def test_predict_shapes_and_range(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        pipe.fit(dataset.x_train, dataset.y_train, config=quick_config())
        preds = pipe.predict(dataset.x_test)
        assert preds.shape == (len(dataset.x_test),)
        assert set(np.unique(preds)) <= set(range(dataset.num_classes))

    def test_score_between_zero_and_one(self, dataset):
        pipe = make_pipeline(dataset, "var")
        pipe.fit(dataset.x_train, dataset.y_train, config=quick_config())
        score = pipe.score(dataset.x_test, dataset.y_test)
        assert 0.0 <= score <= 1.0

    def test_predict_before_fit_raises(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        with pytest.raises(RuntimeError):
            pipe.predict(dataset.x_test)

    def test_logits_shape(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        pipe.fit(dataset.x_train, dataset.y_train, config=quick_config())
        logits = pipe.predict_logits(dataset.x_test)
        assert logits.shape == (len(dataset.x_test), dataset.num_classes)

    def test_training_beats_chance(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        pipe.fit(dataset.x_train, dataset.y_train, config=quick_config(40))
        chance = 1.0 / dataset.num_classes
        assert pipe.score(dataset.x_test, dataset.y_test) > chance

    def test_timing_report_fields(self, dataset):
        pipe = make_pipeline(dataset, "pca")
        report = pipe.fit(dataset.x_train, dataset.y_train, config=quick_config())
        assert report.total_s >= report.adapter_fit_s + report.embedding_s
        assert report.adapter_name == "PCA"
        assert report.strategy is FineTuneStrategy.ADAPTER_HEAD


class TestStrategyEnum:
    def test_encoder_trainable(self):
        assert FineTuneStrategy.FULL.encoder_trainable
        assert not FineTuneStrategy.HEAD.encoder_trainable
        assert not FineTuneStrategy.ADAPTER_HEAD.encoder_trainable

    def test_adapter_trainable(self):
        assert FineTuneStrategy.ADAPTER_HEAD.adapter_trainable
        assert FineTuneStrategy.FULL.adapter_trainable
        assert not FineTuneStrategy.HEAD.adapter_trainable


class TestFrozenLcombIsCacheable:
    def test_head_strategy_with_lcomb_uses_cache(self, dataset):
        """A trainable adapter that the strategy never updates is as
        cacheable as a fit-once adapter."""
        pipe = make_pipeline(dataset, "lcomb")
        report = pipe.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.HEAD,
            config=quick_config(2),
        )
        assert report.used_embedding_cache
