"""Tests for the generic training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.training import TrainConfig, train_classifier_on_arrays


@pytest.fixture
def linear_task(rng):
    """A linearly separable 3-class problem."""
    x = rng.normal(size=(120, 6))
    w = rng.normal(size=(6, 3))
    y = (x @ w).argmax(axis=1)
    return x, y


def make_head(rng):
    return nn.Linear(6, 3, rng=rng)


class TestConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)


class TestTraining:
    def test_loss_decreases(self, linear_task, rng):
        x, y = linear_task
        head = make_head(rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=20, batch_size=32, learning_rate=1e-2),
        )
        assert result.losses[-1] < result.losses[0]
        assert result.epochs_run == 20
        assert result.seconds > 0

    def test_reaches_high_accuracy(self, linear_task, rng):
        x, y = linear_task
        head = make_head(rng)
        train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=60, batch_size=32, learning_rate=1e-2),
        )
        with nn.no_grad():
            acc = (head(nn.Tensor(x)).data.argmax(axis=1) == y).mean()
        assert acc > 0.9

    def test_deterministic_given_seed(self, linear_task):
        x, y = linear_task

        def run():
            head = make_head(np.random.default_rng(0))
            result = train_classifier_on_arrays(
                lambda batch: head(nn.Tensor(batch)),
                head.trainable_parameters(),
                x,
                y,
                TrainConfig(epochs=5, batch_size=16, seed=3),
            )
            return result.losses

        assert run() == run()

    def test_patience_stops_early(self, rng):
        """On a constant-loss problem, patience terminates the loop."""
        x = np.zeros((40, 6))  # zero inputs: loss can't improve
        y = np.zeros(40, dtype=int)
        head = make_head(rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)) * 0.0,
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=100, batch_size=20, patience=3),
        )
        assert result.epochs_run < 100

    def test_max_time_flags_timeout(self, linear_task, rng):
        x, y = linear_task
        head = make_head(rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=10_000, batch_size=4, max_time_s=0.05),
        )
        assert result.timed_out
        assert result.epochs_run < 10_000

    def test_rejects_empty_parameters(self, linear_task):
        x, y = linear_task
        with pytest.raises(ValueError):
            train_classifier_on_arrays(lambda b: nn.Tensor(b), [], x, y, TrainConfig())

    def test_rejects_misaligned_data(self, rng):
        head = make_head(rng)
        with pytest.raises(ValueError):
            train_classifier_on_arrays(
                lambda b: head(nn.Tensor(b)),
                head.trainable_parameters(),
                np.zeros((5, 6)),
                np.zeros(4, dtype=int),
                TrainConfig(),
            )

    def test_final_loss_property(self, linear_task, rng):
        x, y = linear_task
        head = make_head(rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=2, batch_size=32),
        )
        assert result.final_loss == result.losses[-1]


class TestSparkline:
    def test_loss_curve_rendering(self, linear_task, rng):
        x, y = linear_task
        head = make_head(rng)
        result = train_classifier_on_arrays(
            lambda batch: head(nn.Tensor(batch)),
            head.trainable_parameters(),
            x,
            y,
            TrainConfig(epochs=10, batch_size=32, learning_rate=1e-2),
        )
        line = result.sparkline()
        assert len(line) == 10
        # loss decreases -> curve starts high, ends low
        assert line[0] in "▇█"
        assert line[-1] in "▁▂"
